//! ASCII rendering of fields, deployments and trajectories.

use wsn_geometry::{Point, Rect};

/// A character raster over a rectangular field, y-up.
#[derive(Debug, Clone)]
pub struct Canvas {
    field: Rect,
    cols: usize,
    rows: usize,
    cells: Vec<char>,
}

impl Canvas {
    /// Creates an empty canvas of `cols × rows` characters over `field`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(field: Rect, cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "canvas dimensions must be positive");
        Self {
            field,
            cols,
            rows,
            cells: vec!['.'; cols * rows],
        }
    }

    /// Plots `glyph` at the cell containing `p` (silently ignores
    /// out-of-field points).
    pub fn plot(&mut self, p: Point, glyph: char) {
        if !self.field.contains(p) {
            return;
        }
        let fx = (p.x - self.field.min.x) / self.field.width();
        let fy = (p.y - self.field.min.y) / self.field.height();
        let cx = ((fx * self.cols as f64) as usize).min(self.cols - 1);
        let cy = ((fy * self.rows as f64) as usize).min(self.rows - 1);
        self.cells[(self.rows - 1 - cy) * self.cols + cx] = glyph;
    }

    /// Plots a polyline by sampling each segment at sub-cell resolution.
    pub fn plot_path(&mut self, points: &[Point], glyph: char) {
        for w in points.windows(2) {
            let steps = (w[0].distance(w[1]) / (self.field.width() / self.cols as f64))
                .ceil()
                .max(1.0) as usize;
            for s in 0..=steps {
                self.plot(w[0].lerp(w[1], s as f64 / steps as f64), glyph);
            }
        }
    }

    /// Renders to a string, one row per line.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity((self.cols + 3) * self.rows);
        for row in self.cells.chunks(self.cols) {
            out.push_str("  ");
            out.extend(row.iter());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plots_in_the_right_corner() {
        let mut c = Canvas::new(Rect::square(10.0), 10, 10);
        c.plot(Point::new(0.1, 0.1), 'a'); // bottom-left ⟹ last row, first col
        c.plot(Point::new(9.9, 9.9), 'b'); // top-right ⟹ first row, last col
        let s = c.render();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[9].trim_start().starts_with('a'));
        assert!(lines[0].ends_with('b'));
    }

    #[test]
    fn out_of_field_is_ignored() {
        let mut c = Canvas::new(Rect::square(10.0), 4, 4);
        c.plot(Point::new(-5.0, 5.0), 'x');
        c.plot(Point::new(5.0, 50.0), 'x');
        assert!(!c.render().contains('x'));
    }

    #[test]
    fn path_is_contiguous() {
        let mut c = Canvas::new(Rect::square(10.0), 20, 20);
        c.plot_path(&[Point::new(0.5, 5.0), Point::new(9.5, 5.0)], '#');
        // One of the two middle rows must contain an unbroken run of '#'
        // (y = 5.0 falls on the boundary between display rows 9 and 10).
        let s = c.render();
        let hashes = |i: usize| {
            s.lines()
                .nth(i)
                .unwrap()
                .chars()
                .filter(|&ch| ch == '#')
                .count()
        };
        let best = hashes(9).max(hashes(10));
        assert!(best >= 18, "rows 9/10 held only {best} '#'");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_size_rejected() {
        let _ = Canvas::new(Rect::square(1.0), 0, 5);
    }
}
