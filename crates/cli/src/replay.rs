//! `fttt-sim replay TRACE_FILE` — re-run a recorded campaign from its
//! journal header and diff the live rounds against the recording.
//!
//! The journal must have been captured with
//! `fttt-sim campaign --trace-out FILE` (any serialization: `.jsonl`,
//! canonical JSONL, or the Chrome trace form). The recording is
//! self-describing — config, kind and schedule text all come from the
//! `fttt.campaign.header` event, so no other inputs are needed.
//!
//! Exit status: 0 when the replay is faithful (zero divergent rounds and
//! every trial digest matches), 1 when the live run diverged, 2 on
//! unreadable/unparseable input.

use std::path::Path;

use fttt::replay::digest_hex;
use fttt_bench::replay::{parse_recording, replay_and_diff, Divergence};
use fttt_bench::robustness::CampaignKind;

/// How many divergences to print before summarizing the rest.
const MAX_SHOWN: usize = 10;

/// Runs the replay diff against a recorded journal.
pub fn run(path: &Path) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {}: {e}", path.display());
        std::process::exit(2);
    });
    let rec = parse_recording(&text).unwrap_or_else(|e| {
        eprintln!("error: {}: {e}", path.display());
        std::process::exit(2);
    });
    let kind = match &rec.kind {
        CampaignKind::Builtin => "builtin sweep + showcases".to_string(),
        CampaignKind::Custom { label, .. } => format!("custom schedule `{label}`"),
        CampaignKind::Churn => "churn storm x 3 map policies".to_string(),
    };
    println!(
        "recording: {kind} | seed {:#x} | {} trials x {} s, {} nodes | \
         {} trial digests, {} round events",
        rec.cfg.seed,
        rec.cfg.trials,
        rec.cfg.duration,
        rec.cfg.nodes,
        rec.trials.len(),
        rec.rounds.len(),
    );
    println!("replaying from the recorded header...");
    let report = replay_and_diff(&rec).unwrap_or_else(|e| {
        eprintln!("error: replay failed: {e}");
        std::process::exit(2);
    });
    println!(
        "live run: {} round events | campaign checksum {}",
        report.live_rounds,
        digest_hex(report.checksum)
    );
    if report.is_faithful() {
        println!(
            "replay: FAITHFUL — {} recorded rounds re-derived exactly, \
             0 divergences",
            report.recorded_rounds
        );
        return;
    }
    let first = &report.divergences[0];
    eprintln!(
        "replay: DIVERGED — first divergent round: {}",
        describe(first)
    );
    for d in report.divergences.iter().take(MAX_SHOWN) {
        eprintln!("  - {}", describe(d));
    }
    if report.divergences.len() > MAX_SHOWN {
        eprintln!(
            "  ... and {} more divergence(s)",
            report.divergences.len() - MAX_SHOWN
        );
    }
    eprintln!(
        "{} divergence(s) total; the recording does not reproduce under \
         this build (simulation change, or the journal was edited)",
        report.divergences.len()
    );
    std::process::exit(1);
}

fn describe(d: &Divergence) -> String {
    match d.round {
        Some(round) => format!(
            "session {:#x} round {round}: {} recorded as {}, live {}",
            d.session, d.field, d.recorded, d.live
        ),
        None => format!(
            "session {:#x}: {} recorded as {}, live {}",
            d.session, d.field, d.recorded, d.live
        ),
    }
}
