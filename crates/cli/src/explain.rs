//! `fttt-sim explain`: render a `--trace-out` journal as a human-readable
//! timeline of session status transitions and their causes.
//!
//! Accepts both trace formats the journal writes: a Chrome trace-event
//! document (one JSON object with a `traceEvents` array) or line-delimited
//! JSON (one meta line, then one object per event). Round data lives in the
//! per-event `args` object in both, so extraction is format-agnostic once
//! the event objects are in hand.

use wsn_telemetry::json::JsonValue;

/// Aggregated `fttt.match.index` activity (the coarse-to-fine matcher's
/// chunk-pruning instants), either for one round or for a whole trace.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IndexStats {
    /// Indexed matches performed.
    pub matches: u64,
    /// Chunk bounds computed across those matches.
    pub chunks: u64,
    /// Chunks whose faces were actually scanned.
    pub scanned: u64,
    /// Chunks pruned wholesale by their envelope lower bound.
    pub pruned: u64,
}

impl IndexStats {
    fn absorb(&mut self, event: &JsonValue) {
        let args = event.get("args");
        let u = |key| {
            args.and_then(|a| a.get(key))
                .and_then(JsonValue::as_u64)
                .unwrap_or(0)
        };
        self.matches += 1;
        self.chunks += u("chunks");
        self.scanned += u("scanned");
        self.pruned += u("pruned");
    }
}

/// One `fttt.map.repair` event: a live-churn face-map repair. The epoch
/// arrives hex-encoded like every other digest in the journal; `epoch`
/// holds the parsed ordinal when the hex is canonical.
#[derive(Debug, Clone)]
pub struct RepairRecord {
    /// Owning session's process-unique id (0 for traces without one).
    pub session: u64,
    /// Simulation time of the churn event.
    pub t: f64,
    /// Post-repair map epoch (`None` when the hex field is malformed).
    pub epoch: Option<u64>,
    pub node: u64,
    /// Death when true, (re)birth otherwise.
    pub death: bool,
    pub planes_retired: u64,
    pub planes_added: u64,
    pub cells_reclassified: u64,
    pub faces_before: u64,
    pub faces_after: u64,
    pub repair_us: f64,
    /// The session's warm-start face did not survive the repair exactly
    /// (it re-enters the recovery ladder at a forced re-acquisition).
    pub face_remapped: bool,
}

/// One `fttt.session.round` event, decoded from either trace format.
#[derive(Debug, Clone)]
pub struct RoundRecord {
    /// Owning session's process-unique id (0 for old traces without one).
    pub session: u64,
    pub round: u64,
    pub t: f64,
    pub status_before: String,
    pub status: String,
    pub cause: String,
    pub missing: f64,
    pub zeros: f64,
    pub k: u64,
    pub k_after: u64,
    pub held: bool,
    pub reacquired: bool,
    pub similarity: Option<f64>,
    /// Indexed-matcher activity journaled since the previous round event
    /// (matches run *during* a round precede its closing event).
    pub index: IndexStats,
}

/// Everything `explain` pulls out of one trace file.
#[derive(Debug, Clone, Default)]
pub struct TraceSummary {
    /// Session rounds in journal order.
    pub rounds: Vec<RoundRecord>,
    /// Live-churn face-map repairs, ordered by (session, time) so the
    /// timeline can interleave them with their session's rounds.
    pub repairs: Vec<RepairRecord>,
    /// Dropped-event count from the journal meta, when present.
    pub dropped: Option<u64>,
    /// Whole-trace indexed-matcher totals (including matches after the
    /// last round event, which no round can claim).
    pub index_totals: IndexStats,
    /// Occurrence counts of every other event name in the trace.
    pub other_events: Vec<(String, u64)>,
}

fn str_of(obj: &JsonValue, key: &str) -> Option<String> {
    obj.get(key).and_then(JsonValue::as_str).map(str::to_owned)
}

fn f64_of(obj: &JsonValue, key: &str) -> Option<f64> {
    obj.get(key).and_then(JsonValue::as_f64)
}

fn bool_of(obj: &JsonValue, key: &str) -> bool {
    obj.get(key).and_then(JsonValue::as_bool).unwrap_or(false)
}

/// Decodes one journal event object; `Some` only for session rounds.
fn round_of(event: &JsonValue) -> Option<RoundRecord> {
    if str_of(event, "name").as_deref() != Some("fttt.session.round") {
        return None;
    }
    let args = event.get("args")?;
    // Chrome puts the round ordinal in args, JSONL beside them.
    let round = args
        .get("round")
        .or_else(|| event.get("round"))
        .and_then(JsonValue::as_u64)?;
    Some(RoundRecord {
        session: args.get("session").and_then(JsonValue::as_u64).unwrap_or(0),
        round,
        t: f64_of(args, "t")?,
        status_before: str_of(args, "status_before")?,
        status: str_of(args, "status")?,
        cause: str_of(args, "cause")?,
        missing: f64_of(args, "missing").unwrap_or(0.0),
        zeros: f64_of(args, "zeros").unwrap_or(0.0),
        k: args.get("k").and_then(JsonValue::as_u64).unwrap_or(0),
        k_after: args.get("k_after").and_then(JsonValue::as_u64).unwrap_or(0),
        held: bool_of(args, "held"),
        reacquired: bool_of(args, "reacquired"),
        similarity: f64_of(args, "similarity"),
        index: IndexStats::default(),
    })
}

/// Decodes one journal event object; `Some` only for map repairs.
fn repair_of(event: &JsonValue) -> Option<RepairRecord> {
    if str_of(event, "name").as_deref() != Some("fttt.map.repair") {
        return None;
    }
    let args = event.get("args")?;
    let u = |key| args.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
    Some(RepairRecord {
        session: u("session"),
        t: f64_of(args, "t").unwrap_or(0.0),
        epoch: str_of(args, "epoch")
            .as_deref()
            .and_then(wsn_network::replay::parse_digest_hex),
        node: u("node"),
        death: bool_of(args, "death"),
        planes_retired: u("planes_retired"),
        planes_added: u("planes_added"),
        cells_reclassified: u("cells"),
        faces_before: u("faces_before"),
        faces_after: u("faces_after"),
        repair_us: f64_of(args, "repair_us").unwrap_or(0.0),
        face_remapped: bool_of(args, "face_remapped"),
    })
}

/// Walks every event object in a trace file's text — Chrome trace-event
/// or line-delimited JSON — and returns the journal's dropped-event count
/// when the meta carries one.
fn for_each_event(text: &str, note: &mut dyn FnMut(&JsonValue)) -> Result<Option<u64>, String> {
    if let Ok(doc) = JsonValue::parse(text) {
        // A whole-file parse succeeding means Chrome trace-event format.
        let events = doc
            .get("traceEvents")
            .and_then(JsonValue::as_array)
            .ok_or("not a trace file: no \"traceEvents\" array")?;
        for e in events {
            note(e);
        }
        Ok(doc
            .get("otherData")
            .and_then(|o| o.get("dropped"))
            .and_then(JsonValue::as_u64))
    } else {
        // Otherwise it must be line-delimited JSON.
        let mut dropped = None;
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let e = JsonValue::parse(line)
                .map_err(|err| format!("line {}: not JSON ({err})", i + 1))?;
            if str_of(&e, "kind").as_deref() == Some("meta") {
                dropped = e.get("dropped").and_then(JsonValue::as_u64);
                continue;
            }
            note(&e);
        }
        Ok(dropped)
    }
}

/// Parses a trace file's text in either format into a [`TraceSummary`].
pub fn load(text: &str) -> Result<TraceSummary, String> {
    let mut summary = TraceSummary::default();
    let mut counts = std::collections::BTreeMap::<String, u64>::new();
    // Indexed matches run *inside* a round, so their instants precede the
    // round's closing event in journal order: accumulate until the next
    // round event claims them. Must happen before the stable sort below —
    // attribution is positional, not keyed.
    let mut pending = IndexStats::default();
    let mut note = |event: &JsonValue| {
        if str_of(event, "name").as_deref() == Some("fttt.match.index") {
            pending.absorb(event);
            summary.index_totals.absorb(event);
            return;
        }
        if let Some(rep) = repair_of(event) {
            summary.repairs.push(rep);
            return;
        }
        if let Some(mut r) = round_of(event) {
            r.index = std::mem::take(&mut pending);
            summary.rounds.push(r);
        } else if let Some(name) = str_of(event, "name") {
            *counts.entry(name).or_insert(0) += 1;
        }
    };
    let dropped = for_each_event(text, &mut note)?;
    summary.dropped = dropped;
    summary.rounds.sort_by_key(|r| (r.session, r.round));
    summary
        .repairs
        .sort_by(|a, b| a.session.cmp(&b.session).then(a.t.total_cmp(&b.t)));
    summary.other_events = counts.into_iter().collect();
    Ok(summary)
}

/// Writes every not-yet-rendered repair at or before `upto` (as a
/// `(session, t)` bound; `None` drains the rest), advancing `next` and
/// opening a new per-session block when the timeline crosses sessions.
fn flush_repairs(
    out: &mut String,
    repairs: &[RepairRecord],
    next: &mut usize,
    upto: Option<(u64, f64)>,
    many_sessions: bool,
    current_session: &mut Option<u64>,
) {
    use std::fmt::Write as _;
    while let Some(rep) = repairs.get(*next) {
        if let Some((session, t)) = upto {
            let due = rep.session < session || (rep.session == session && rep.t <= t);
            if !due {
                break;
            }
        }
        if many_sessions && *current_session != Some(rep.session) {
            *current_session = Some(rep.session);
            let _ = writeln!(out, "— session {} —", rep.session);
        }
        let epoch = rep.epoch.map_or_else(|| "?".to_owned(), |e| e.to_string());
        let _ = writeln!(
            out,
            "churn       t={:>6.1}s  epoch {}: node {} {}, {} planes retired, {} added, \
             {} cells reclassified, faces {} -> {}, repair {:.0} µs{}",
            rep.t,
            epoch,
            rep.node,
            if rep.death { "died" } else { "joined" },
            rep.planes_retired,
            rep.planes_added,
            rep.cells_reclassified,
            rep.faces_before,
            rep.faces_after,
            rep.repair_us,
            if rep.face_remapped {
                ", face remapped"
            } else {
                ""
            },
        );
        *next += 1;
    }
}

fn pct(fraction: f64) -> String {
    format!("{:.0}%", 100.0 * fraction)
}

/// Renders the human-readable timeline: one line per status transition
/// (naming the round and the cause), ladder movements, and a summary.
pub fn render(summary: &TraceSummary) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if summary.rounds.is_empty() && summary.repairs.is_empty() {
        out.push_str("no session rounds in this trace\n");
        if !summary.other_events.is_empty() {
            out.push_str("(the journal holds other events — see below)\n");
        }
    }
    let sessions: std::collections::BTreeSet<u64> = summary
        .rounds
        .iter()
        .map(|r| r.session)
        .chain(summary.repairs.iter().map(|r| r.session))
        .collect();
    let many_sessions = sessions.len() > 1;
    let mut current_session = None;
    let mut transitions = 0usize;
    let mut next_repair = 0usize;
    for r in &summary.rounds {
        // Churn repairs interleave with rounds by simulation time: render
        // every repair due at or before this round first (even when the
        // round itself stays silent).
        flush_repairs(
            &mut out,
            &summary.repairs,
            &mut next_repair,
            Some((r.session, r.t)),
            many_sessions,
            &mut current_session,
        );
        let mut notes = Vec::new();
        if r.status_before != r.status {
            transitions += 1;
            notes.push(format!("{} -> {}", r.status_before, r.status));
        }
        if r.k_after != r.k {
            notes.push(format!(
                "k {} -> {} ({})",
                r.k,
                r.k_after,
                if r.k_after > r.k {
                    "escalated"
                } else {
                    "relaxed"
                }
            ));
        }
        if r.held {
            notes.push("held last estimate".into());
        }
        if r.reacquired {
            notes.push("reacquired by exhaustive fallback".into());
        }
        if notes.is_empty() {
            continue; // steady-state rounds stay silent
        }
        // Only on rounds that already have something to say: pruning
        // effectiveness of the indexed matches that ran inside them.
        if r.index.matches > 0 {
            notes.push(format!(
                "index pruned {}/{} chunks over {} match(es)",
                r.index.pruned, r.index.chunks, r.index.matches
            ));
        }
        // Campaign traces interleave many sessions; break the timeline
        // into per-session blocks so round ordinals read coherently (and
        // only for sessions that have something to say).
        if many_sessions && current_session != Some(r.session) {
            current_session = Some(r.session);
            let _ = writeln!(out, "— session {} —", r.session);
        }
        let _ = write!(
            out,
            "round {:>4}  t={:>6.1}s  cause: {:<10}  missing {:>4}, zeros {:>4}",
            r.round,
            r.t,
            r.cause,
            pct(r.missing),
            pct(r.zeros),
        );
        if let Some(sim) = r.similarity {
            let _ = write!(out, ", sim {sim:.2}");
        }
        let _ = writeln!(out, "  | {}", notes.join("; "));
    }
    flush_repairs(
        &mut out,
        &summary.repairs,
        &mut next_repair,
        None,
        many_sessions,
        &mut current_session,
    );
    let _ = writeln!(out, "---");
    let _ = writeln!(
        out,
        "{} rounds across {} session(s), {} status transition(s)",
        summary.rounds.len(),
        sessions.len(),
        transitions
    );
    let mut causes = std::collections::BTreeMap::<&str, u64>::new();
    for r in &summary.rounds {
        *causes.entry(r.cause.as_str()).or_insert(0) += 1;
    }
    if !causes.is_empty() {
        let rendered: Vec<String> = causes.iter().map(|(c, n)| format!("{c} x{n}")).collect();
        let _ = writeln!(out, "causes: {}", rendered.join(", "));
    }
    if !summary.repairs.is_empty() {
        let deaths = summary.repairs.iter().filter(|r| r.death).count();
        let remaps = summary.repairs.iter().filter(|r| r.face_remapped).count();
        let _ = writeln!(
            out,
            "map repairs: {} ({} death(s), {} birth(s)), {} warm-face remap(s)",
            summary.repairs.len(),
            deaths,
            summary.repairs.len() - deaths,
            remaps
        );
    }
    if let Some(last) = summary.rounds.last() {
        let _ = writeln!(out, "final status: {}", last.status);
    }
    let ix = &summary.index_totals;
    if ix.matches > 0 {
        let rate = if ix.chunks > 0 {
            100.0 * ix.pruned as f64 / ix.chunks as f64
        } else {
            0.0
        };
        let _ = writeln!(
            out,
            "indexed matching: {} match(es), pruned {} of {} chunk bounds ({rate:.0}%)",
            ix.matches, ix.pruned, ix.chunks
        );
    }
    if let Some(dropped) = summary.dropped {
        if dropped > 0 {
            let _ = writeln!(
                out,
                "warning: journal dropped {dropped} event(s) — raise the capacity \
                 or shorten the run for a complete record"
            );
        }
    }
    for (name, n) in &summary.other_events {
        let _ = writeln!(out, "other events: {name} x{n}");
    }
    out
}

/// One `fttt.client.push` event: the client-observed side of a traced
/// push batch (`serve_load --trace-out`).
#[derive(Debug, Clone)]
pub struct ClientPush {
    /// Wire trace id, parsed from the hex field (`None` when malformed).
    pub trace: Option<u64>,
    pub session: u64,
    pub rounds: u64,
    /// Full client-observed round trip: send → matching reply.
    pub rtt_us: f64,
}

/// One `fttt.server.push` event: the shard-side span for the same batch,
/// stamped with the request's trace id.
#[derive(Debug, Clone)]
pub struct ServerPush {
    pub trace: Option<u64>,
    pub session: u64,
    pub shard: u64,
    pub rounds: u64,
    /// Time the worker spent actually stepping rounds (no queue wait).
    pub work_us: f64,
}

/// Push-correlation view of one journal: every cross-wire event, keyed
/// for a trace-id join against the journal from the other side.
#[derive(Debug, Clone, Default)]
pub struct WireTrace {
    pub client_pushes: Vec<ClientPush>,
    pub server_pushes: Vec<ServerPush>,
    /// `fttt.server.shed` trace ids. The client retries a shed push under
    /// the *same* trace id, so a shed and a server span sharing an id
    /// read as "shed, retried, served".
    pub sheds: Vec<Option<u64>>,
    /// `fttt.server.stale_epoch` rejections: (trace, session, opened
    /// epoch, current epoch).
    pub stales: Vec<(Option<u64>, u64, u64, u64)>,
}

/// Parses a trace file's text (either format) into its cross-wire events.
pub fn load_wire(text: &str) -> Result<WireTrace, String> {
    let mut w = WireTrace::default();
    for_each_event(text, &mut |event| {
        let Some(name) = str_of(event, "name") else {
            return;
        };
        let Some(args) = event.get("args") else {
            return;
        };
        let trace = str_of(args, "trace")
            .as_deref()
            .and_then(wsn_network::replay::parse_digest_hex);
        let u = |key: &str| args.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
        match name.as_str() {
            "fttt.client.push" => w.client_pushes.push(ClientPush {
                trace,
                session: u("session"),
                rounds: u("rounds"),
                rtt_us: f64_of(args, "rtt_us").unwrap_or(0.0),
            }),
            "fttt.server.push" => w.server_pushes.push(ServerPush {
                trace,
                session: u("session"),
                shard: u("shard"),
                rounds: u("rounds"),
                work_us: f64_of(args, "work_us").unwrap_or(0.0),
            }),
            "fttt.server.shed" => w.sheds.push(trace),
            "fttt.server.stale_epoch" => {
                w.stales
                    .push((trace, u("session"), u("opened_epoch"), u("current_epoch")))
            }
            _ => {}
        }
    })?;
    Ok(w)
}

/// One push batch seen on both sides of the wire, joined by trace id.
#[derive(Debug, Clone)]
pub struct MatchedPush {
    pub trace: u64,
    pub session: u64,
    pub shard: u64,
    pub rounds: u64,
    pub rtt_us: f64,
    pub work_us: f64,
    /// Server sheds carrying this trace id (retries before it was served).
    pub sheds: u64,
}

/// The cross-wire join of a client trace against a server journal.
#[derive(Debug, Clone, Default)]
pub struct Correlation {
    pub matched: Vec<MatchedPush>,
    pub client_total: usize,
    pub server_total: usize,
    /// Client pushes with no matching server span (untraced v1 frames,
    /// a malformed id, or a dropped server event).
    pub client_only: usize,
    /// Server spans no client push claimed (other clients, drops).
    pub server_only: usize,
    pub sheds_total: usize,
    /// Sheds whose trace id the server eventually served — the client
    /// retried and got through.
    pub sheds_retried: usize,
    pub stales: usize,
    /// Trace ids on which the two journals disagree about the session id
    /// or round count (almost certainly journals from different runs).
    pub session_mismatches: usize,
}

/// Joins the two sides by trace id; journal order is irrelevant.
pub fn correlate(client: &WireTrace, server: &WireTrace) -> Correlation {
    let mut spans = std::collections::HashMap::<u64, &ServerPush>::new();
    let mut untraced_spans = 0usize;
    for s in &server.server_pushes {
        match s.trace {
            Some(t) => {
                spans.insert(t, s);
            }
            None => untraced_spans += 1,
        }
    }
    let served: std::collections::HashSet<u64> = server
        .server_pushes
        .iter()
        .filter_map(|s| s.trace)
        .collect();
    let mut shed_counts = std::collections::HashMap::<u64, u64>::new();
    for t in server.sheds.iter().flatten() {
        *shed_counts.entry(*t).or_insert(0) += 1;
    }
    let mut c = Correlation {
        client_total: client.client_pushes.len(),
        server_total: server.server_pushes.len(),
        sheds_total: server.sheds.len(),
        sheds_retried: shed_counts
            .iter()
            .filter(|(t, _)| served.contains(t))
            .map(|(_, n)| *n as usize)
            .sum(),
        stales: server.stales.len(),
        ..Correlation::default()
    };
    for p in &client.client_pushes {
        let Some(t) = p.trace else {
            c.client_only += 1;
            continue;
        };
        let Some(s) = spans.remove(&t) else {
            c.client_only += 1;
            continue;
        };
        if s.session != p.session || s.rounds != p.rounds {
            c.session_mismatches += 1;
        }
        c.matched.push(MatchedPush {
            trace: t,
            session: p.session,
            shard: s.shard,
            rounds: p.rounds,
            rtt_us: p.rtt_us,
            work_us: s.work_us,
            sheds: shed_counts.get(&t).copied().unwrap_or(0),
        });
    }
    c.server_only = untraced_spans + spans.len();
    c
}

/// `sorted` ascending; nearest-rank percentile.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Renders the cross-wire join: where each slow round actually spent its
/// time (shard work vs queue/wire), named per trace id.
pub fn render_correlation(c: &Correlation) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "cross-wire correlation: {} client push(es) <-> {} server span(s), {} matched by trace id",
        c.client_total,
        c.server_total,
        c.matched.len()
    );
    if c.matched.is_empty() {
        out.push_str(
            "no pushes share a trace id — run the client with --trace-out (traced v2 \
             frames) and the server with a journal, then correlate those two files\n",
        );
        return out;
    }
    let mut overheads: Vec<f64> = c
        .matched
        .iter()
        .map(|m| (m.rtt_us - m.work_us).max(0.0))
        .collect();
    overheads.sort_by(f64::total_cmp);
    let work: f64 = c.matched.iter().map(|m| m.work_us).sum();
    let rtt: f64 = c.matched.iter().map(|m| m.rtt_us).sum();
    let _ = writeln!(
        out,
        "queue+wire overhead per push (rtt − server work): p50 {:.0} µs, p99 {:.0} µs, max {:.0} µs",
        percentile(&overheads, 0.5),
        percentile(&overheads, 0.99),
        overheads.last().copied().unwrap_or(0.0),
    );
    let _ = writeln!(
        out,
        "server work accounts for {:.0}% of client-observed rtt overall",
        100.0 * work / rtt.max(1e-9),
    );
    let mut shards = std::collections::BTreeMap::<u64, u64>::new();
    for m in &c.matched {
        *shards.entry(m.shard).or_insert(0) += 1;
    }
    let spread: Vec<String> = shards
        .iter()
        .map(|(s, n)| format!("shard {s} x{n}"))
        .collect();
    let _ = writeln!(out, "shard spread: {}", spread.join(", "));
    let mut slowest: Vec<&MatchedPush> = c.matched.iter().collect();
    slowest.sort_by(|a, b| b.rtt_us.total_cmp(&a.rtt_us));
    let _ = writeln!(out, "slowest pushes (server-side attribution):");
    for m in slowest.iter().take(5) {
        let overhead = (m.rtt_us - m.work_us).max(0.0);
        let cause = if m.sheds > 0 {
            format!("  [shed x{} before served]", m.sheds)
        } else if overhead > m.work_us {
            "  [queue/wire dominated]".to_owned()
        } else {
            "  [server work dominated]".to_owned()
        };
        let _ = writeln!(
            out,
            "  trace {}  session {:>4}  shard {}  {} round(s)  rtt {:>7.0} µs = {:>6.0} µs work + {:>6.0} µs queue/wire{}",
            wsn_network::replay::digest_hex(m.trace),
            m.session,
            m.shard,
            m.rounds,
            m.rtt_us,
            m.work_us,
            overhead,
            cause,
        );
    }
    if c.sheds_total > 0 {
        let _ = writeln!(
            out,
            "sheds: {} ({} retried under the same trace id and served)",
            c.sheds_total, c.sheds_retried,
        );
    }
    if c.stales > 0 {
        let _ = writeln!(out, "stale-epoch rejections: {}", c.stales);
    }
    if c.client_only > 0 {
        let _ = writeln!(
            out,
            "client pushes with no server span: {} (untraced v1 frames, or the server \
             journal dropped events)",
            c.client_only,
        );
    }
    if c.server_only > 0 {
        let _ = writeln!(
            out,
            "server spans with no client push: {} (other clients, or the client journal \
             dropped events)",
            c.server_only,
        );
    }
    if c.session_mismatches > 0 {
        let _ = writeln!(
            out,
            "warning: {} trace id(s) name different sessions or round counts on the two \
             sides — are these journals from the same run?",
            c.session_mismatches,
        );
    }
    out
}

/// `explain CLIENT --correlate SERVER`: join the two journals and print
/// the attribution report.
pub fn run_correlate(client_path: &std::path::Path, server_path: &std::path::Path) {
    let read = |path: &std::path::Path| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {}: {e}", path.display());
            std::process::exit(2);
        })
    };
    let parse = |path: &std::path::Path, text: &str| {
        load_wire(text).unwrap_or_else(|e| {
            eprintln!("error: {}: {e}", path.display());
            std::process::exit(2);
        })
    };
    let client = parse(client_path, &read(client_path));
    let server = parse(server_path, &read(server_path));
    if client.client_pushes.is_empty() && !client.server_pushes.is_empty() {
        eprintln!(
            "note: {} holds server spans but no client pushes — argument order is \
             `explain CLIENT_TRACE --correlate SERVER_TRACE`",
            client_path.display(),
        );
    }
    print!("{}", render_correlation(&correlate(&client, &server)));
}

/// The `explain` subcommand: load, render, print.
pub fn run(path: &std::path::Path) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {}: {e}", path.display());
        std::process::exit(2);
    });
    match load(&text) {
        Ok(summary) => print!("{}", render(&summary)),
        Err(e) => {
            eprintln!("error: {}: {e}", path.display());
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_telemetry::trace::{ArgValue, Journal, TraceKind};

    /// Builds a journal holding two rounds (one Degraded transition) and an
    /// unrelated instant, then returns both serializations.
    fn sample_trace() -> (String, String) {
        let j = Journal::with_capacity(16);
        for (round, before, after, cause, missing) in [
            (0u64, "Tracking", "Tracking", "healthy", 0.0),
            (1, "Tracking", "Degraded", "blackout", 1.0),
        ] {
            j.record(
                "fttt.session.round",
                TraceKind::Round { round },
                vec![
                    ("t", ArgValue::F64(round as f64)),
                    ("status_before", ArgValue::Str(before.into())),
                    ("status", ArgValue::Str(after.into())),
                    ("cause", ArgValue::Str(cause.into())),
                    ("missing", ArgValue::F64(missing)),
                    ("zeros", ArgValue::F64(0.25)),
                    ("k", ArgValue::U64(5)),
                    ("k_after", ArgValue::U64(if round == 1 { 7 } else { 5 })),
                    ("held", ArgValue::Bool(round == 1)),
                    ("reacquired", ArgValue::Bool(false)),
                ],
            );
        }
        j.record("fttt.match.exhaustive", TraceKind::Instant, Vec::new());
        let log = j.snapshot();
        (log.to_chrome_json(), log.to_jsonl())
    }

    #[test]
    fn both_formats_decode_to_the_same_rounds() {
        let (chrome, jsonl) = sample_trace();
        for text in [chrome, jsonl] {
            let s = load(&text).unwrap();
            assert_eq!(s.rounds.len(), 2, "{text}");
            assert_eq!(s.rounds[1].round, 1);
            assert_eq!(s.rounds[1].cause, "blackout");
            assert_eq!(s.rounds[1].status_before, "Tracking");
            assert_eq!(s.rounds[1].status, "Degraded");
            assert_eq!(s.rounds[1].k_after, 7);
            assert!(s.rounds[1].held);
            assert_eq!(s.dropped, Some(0));
            assert_eq!(s.other_events, vec![("fttt.match.exhaustive".into(), 1)]);
        }
    }

    #[test]
    fn render_names_round_and_cause_of_each_transition() {
        let (chrome, _) = sample_trace();
        let text = render(&load(&chrome).unwrap());
        assert!(text.contains("round    1"), "{text}");
        assert!(text.contains("cause: blackout"), "{text}");
        assert!(text.contains("Tracking -> Degraded"), "{text}");
        assert!(text.contains("k 5 -> 7 (escalated)"), "{text}");
        assert!(
            text.contains("2 rounds across 1 session(s), 1 status transition(s)"),
            "{text}"
        );
        // One session only: no per-session block headers.
        assert!(!text.contains("— session"), "{text}");
        assert!(text.contains("final status: Degraded"), "{text}");
        // The healthy steady-state round stays silent in the timeline.
        assert!(!text.contains("round    0"), "{text}");
    }

    #[test]
    fn interleaved_sessions_split_into_blocks() {
        let j = Journal::with_capacity(16);
        for session in [3u64, 9] {
            j.record(
                "fttt.session.round",
                TraceKind::Round { round: 0 },
                vec![
                    ("session", ArgValue::U64(session)),
                    ("t", ArgValue::F64(0.0)),
                    ("status_before", ArgValue::Str("Tracking".into())),
                    ("status", ArgValue::Str("Degraded".into())),
                    ("cause", ArgValue::Str("starved".into())),
                ],
            );
        }
        let s = load(&j.snapshot().to_jsonl()).unwrap();
        assert_eq!(s.rounds[0].session, 3);
        assert_eq!(s.rounds[1].session, 9);
        let text = render(&s);
        assert!(text.contains("— session 3 —"), "{text}");
        assert!(text.contains("— session 9 —"), "{text}");
        assert!(text.contains("2 rounds across 2 session(s)"), "{text}");
    }

    /// Builds a journal interleaving indexed-match instants with rounds:
    /// two matches inside round 0 (silent round), one inside round 1 (a
    /// transition), one after the final round (attributable to no round).
    fn indexed_trace() -> String {
        let j = Journal::with_capacity(32);
        let index_instant = |chunks: u64, scanned: u64| {
            j.record(
                "fttt.match.index",
                TraceKind::Instant,
                vec![
                    ("face", ArgValue::U64(3)),
                    ("evaluated", ArgValue::U64(9)),
                    ("ties", ArgValue::U64(1)),
                    ("chunks", ArgValue::U64(chunks)),
                    ("scanned", ArgValue::U64(scanned)),
                    ("pruned", ArgValue::U64(chunks - scanned)),
                    ("tightness", ArgValue::F64(0.8)),
                ],
            );
        };
        let round = |round: u64, status: &str| {
            j.record(
                "fttt.session.round",
                TraceKind::Round { round },
                vec![
                    ("t", ArgValue::F64(round as f64)),
                    ("status_before", ArgValue::Str("Tracking".into())),
                    ("status", ArgValue::Str(status.into())),
                    ("cause", ArgValue::Str("healthy".into())),
                ],
            );
        };
        index_instant(10, 2);
        index_instant(10, 3);
        round(0, "Tracking");
        index_instant(20, 4);
        round(1, "Degraded");
        index_instant(8, 8);
        j.snapshot().to_jsonl()
    }

    #[test]
    fn index_instants_attribute_to_their_round_in_journal_order() {
        let s = load(&indexed_trace()).unwrap();
        assert_eq!(s.rounds.len(), 2);
        assert_eq!(
            s.rounds[0].index,
            IndexStats {
                matches: 2,
                chunks: 20,
                scanned: 5,
                pruned: 15
            }
        );
        assert_eq!(
            s.rounds[1].index,
            IndexStats {
                matches: 1,
                chunks: 20,
                scanned: 4,
                pruned: 16
            }
        );
        // Totals also cover the trailing match no round could claim.
        assert_eq!(
            s.index_totals,
            IndexStats {
                matches: 4,
                chunks: 48,
                scanned: 17,
                pruned: 31
            }
        );
        // Index instants are rendered as index stats, not "other events".
        assert!(s.other_events.is_empty(), "{:?}", s.other_events);
    }

    #[test]
    fn render_shows_pruning_effectiveness() {
        let text = render(&load(&indexed_trace()).unwrap());
        // Round 0 is steady-state: silent, even with index activity.
        assert!(!text.contains("round    0"), "{text}");
        // Round 1 transitions and reports its own pruning.
        assert!(
            text.contains("index pruned 16/20 chunks over 1 match(es)"),
            "{text}"
        );
        assert!(
            text.contains("indexed matching: 4 match(es), pruned 31 of 48 chunk bounds (65%)"),
            "{text}"
        );
    }

    /// A journal interleaving churn repairs with rounds: a silent round,
    /// a death repair (t between the rounds), a transition round, then a
    /// birth repair after the final round (flushed by the trailing drain).
    fn churn_trace() -> String {
        let j = Journal::with_capacity(32);
        let round = |round: u64, status: &str| {
            j.record(
                "fttt.session.round",
                TraceKind::Round { round },
                vec![
                    ("t", ArgValue::F64(round as f64 * 10.0)),
                    ("status_before", ArgValue::Str("Tracking".into())),
                    ("status", ArgValue::Str(status.into())),
                    ("cause", ArgValue::Str("healthy".into())),
                ],
            );
        };
        let repair = |t: f64, epoch: &str, node: u64, death: bool, remapped: bool| {
            j.record(
                "fttt.map.repair",
                TraceKind::Instant,
                vec![
                    ("t", ArgValue::F64(t)),
                    ("epoch", ArgValue::Str(epoch.into())),
                    ("node", ArgValue::U64(node)),
                    ("death", ArgValue::Bool(death)),
                    ("planes_retired", ArgValue::U64(if death { 12 } else { 0 })),
                    ("planes_added", ArgValue::U64(if death { 9 } else { 14 })),
                    ("cells", ArgValue::U64(625)),
                    ("faces_before", ArgValue::U64(841)),
                    ("faces_after", ArgValue::U64(838)),
                    ("repair_us", ArgValue::F64(480.2)),
                    ("face_remapped", ArgValue::Bool(remapped)),
                ],
            );
        };
        round(0, "Tracking");
        repair(5.0, &wsn_network::replay::digest_hex(3), 7, true, true);
        round(1, "Degraded");
        repair(15.0, "not-hex", 7, false, false);
        j.snapshot().to_jsonl()
    }

    #[test]
    fn repairs_decode_with_parsed_epochs() {
        let s = load(&churn_trace()).unwrap();
        assert_eq!(s.repairs.len(), 2);
        assert_eq!(s.repairs[0].epoch, Some(3));
        assert_eq!(s.repairs[0].node, 7);
        assert!(s.repairs[0].death);
        assert_eq!(s.repairs[0].planes_retired, 12);
        assert_eq!(s.repairs[0].faces_before, 841);
        assert_eq!(s.repairs[0].faces_after, 838);
        assert!(s.repairs[0].face_remapped);
        // A malformed epoch hex decodes to None, not a parse failure.
        assert_eq!(s.repairs[1].epoch, None);
        assert!(!s.repairs[1].death);
        // Repairs are rendered as churn lines, not "other events".
        assert!(s.other_events.is_empty(), "{:?}", s.other_events);
    }

    #[test]
    fn render_interleaves_repairs_by_time_and_totals_them() {
        let text = render(&load(&churn_trace()).unwrap());
        let death = text
            .find("epoch 3: node 7 died, 12 planes retired, 9 added, 625 cells reclassified")
            .expect(&text);
        assert!(text[death..].contains("faces 841 -> 838"), "{text}");
        assert!(
            text[death..].contains("repair 480 µs, face remapped"),
            "{text}"
        );
        // The death (t=5) lands between round 0 (silent, t=0) and the
        // round-1 transition (t=10); the birth (t=15) follows round 1 and
        // renders an unparseable epoch as "?".
        let transition = text.find("round    1").expect(&text);
        let birth = text.find("epoch ?: node 7 joined").expect(&text);
        assert!(death < transition && transition < birth, "{text}");
        assert!(
            text.contains("map repairs: 2 (1 death(s), 1 birth(s)), 1 warm-face remap(s)"),
            "{text}"
        );
    }

    #[test]
    fn repair_only_sessions_still_open_a_timeline_block() {
        let j = Journal::with_capacity(8);
        for session in [2u64, 5] {
            j.record(
                "fttt.map.repair",
                TraceKind::Instant,
                vec![
                    ("session", ArgValue::U64(session)),
                    ("t", ArgValue::F64(1.0)),
                    (
                        "epoch",
                        ArgValue::Str(wsn_network::replay::digest_hex(session)),
                    ),
                    ("node", ArgValue::U64(1)),
                    ("death", ArgValue::Bool(true)),
                ],
            );
        }
        let s = load(&j.snapshot().to_jsonl()).unwrap();
        let text = render(&s);
        // No rounds at all: the trailing drain still renders both repairs
        // under their own session headers.
        assert!(!text.contains("no session rounds"), "{text}");
        assert!(text.contains("— session 2 —"), "{text}");
        assert!(text.contains("— session 5 —"), "{text}");
        assert!(text.contains("epoch 5: node 1 died"), "{text}");
        assert!(text.contains("0 rounds across 2 session(s)"), "{text}");
    }

    #[test]
    fn foreign_files_are_rejected_with_a_reason() {
        assert!(load("{\"hello\": 1}").is_err());
        assert!(load("not json at all").is_err());
    }

    /// Client + server journals for one traced run: trace 1 served clean,
    /// trace 2 shed once then served, trace 3 never journaled server-side
    /// (a v1 push or a drop), trace 9 served for some other client, plus
    /// one stale-epoch rejection.
    fn wire_pair() -> (String, String) {
        use wsn_network::replay::digest_hex;
        let client = Journal::with_capacity(16);
        for (trace, session, rtt) in [(1u64, 10u64, 500.0), (2, 11, 2500.0), (3, 12, 400.0)] {
            client.record(
                "fttt.client.push",
                TraceKind::Instant,
                vec![
                    ("trace", ArgValue::Str(digest_hex(trace))),
                    ("session", ArgValue::U64(session)),
                    ("rounds", ArgValue::U64(4)),
                    ("rtt_us", ArgValue::F64(rtt)),
                ],
            );
        }
        let server = Journal::with_capacity(16);
        server.record(
            "fttt.server.shed",
            TraceKind::Instant,
            vec![
                ("trace", ArgValue::Str(digest_hex(2))),
                ("shard", ArgValue::U64(1)),
                ("context", ArgValue::U64(11)),
            ],
        );
        for (trace, session, shard, work) in [
            (1u64, 10u64, 0u64, 300.0),
            (2, 11, 1, 700.0),
            (9, 40, 1, 100.0),
        ] {
            server.record(
                "fttt.server.push",
                TraceKind::Instant,
                vec![
                    ("trace", ArgValue::Str(digest_hex(trace))),
                    ("session", ArgValue::U64(session)),
                    ("shard", ArgValue::U64(shard)),
                    ("rounds", ArgValue::U64(4)),
                    ("work_us", ArgValue::F64(work)),
                ],
            );
        }
        server.record(
            "fttt.server.stale_epoch",
            TraceKind::Instant,
            vec![
                ("trace", ArgValue::Str(digest_hex(7))),
                ("session", ArgValue::U64(33)),
                ("shard", ArgValue::U64(0)),
                ("opened_epoch", ArgValue::U64(1)),
                ("current_epoch", ArgValue::U64(2)),
            ],
        );
        (client.snapshot().to_jsonl(), server.snapshot().to_jsonl())
    }

    #[test]
    fn correlation_joins_both_sides_by_trace_id() {
        let (c_text, s_text) = wire_pair();
        let client = load_wire(&c_text).unwrap();
        let server = load_wire(&s_text).unwrap();
        assert_eq!(client.client_pushes.len(), 3);
        assert_eq!(server.server_pushes.len(), 3);
        let c = correlate(&client, &server);
        assert_eq!(c.matched.len(), 2);
        let clean = c.matched.iter().find(|m| m.session == 10).unwrap();
        assert_eq!(clean.shard, 0);
        assert_eq!(clean.rtt_us, 500.0);
        assert_eq!(clean.work_us, 300.0);
        assert_eq!(clean.sheds, 0);
        let retried = c.matched.iter().find(|m| m.session == 11).unwrap();
        assert_eq!(
            retried.sheds, 1,
            "the shed retry shares the push's trace id"
        );
        assert_eq!(c.client_only, 1, "trace 3 has no server span");
        assert_eq!(c.server_only, 1, "trace 9 has no client push");
        assert_eq!((c.sheds_total, c.sheds_retried), (1, 1));
        assert_eq!(c.stales, 1);
        assert_eq!(c.session_mismatches, 0);
    }

    #[test]
    fn correlation_render_names_the_server_side_cause() {
        let (c_text, s_text) = wire_pair();
        let c = correlate(&load_wire(&c_text).unwrap(), &load_wire(&s_text).unwrap());
        let text = render_correlation(&c);
        assert!(
            text.contains("3 client push(es) <-> 3 server span(s), 2 matched"),
            "{text}"
        );
        assert!(text.contains("shard 0 x1, shard 1 x1"), "{text}");
        // The slowest push (trace 2, rtt 2500) is attributed to its shed.
        assert!(text.contains("[shed x1 before served]"), "{text}");
        assert!(
            text.contains("sheds: 1 (1 retried under the same trace id and served)"),
            "{text}"
        );
        assert!(text.contains("stale-epoch rejections: 1"), "{text}");
        assert!(
            text.contains("client pushes with no server span: 1"),
            "{text}"
        );
        assert!(
            text.contains("server spans with no client push: 1"),
            "{text}"
        );
    }

    #[test]
    fn correlation_of_unrelated_traces_says_so() {
        let j = Journal::with_capacity(4);
        let empty = j.snapshot().to_chrome_json();
        let c = correlate(&load_wire(&empty).unwrap(), &load_wire(&empty).unwrap());
        let text = render_correlation(&c);
        assert!(text.contains("no pushes share a trace id"), "{text}");
    }

    #[test]
    fn correlation_flags_session_mismatches() {
        use wsn_network::replay::digest_hex;
        let one = |name: &'static str, session: u64| {
            let j = Journal::with_capacity(4);
            let mut kv = vec![
                ("trace", ArgValue::Str(digest_hex(5))),
                ("session", ArgValue::U64(session)),
                ("rounds", ArgValue::U64(1)),
            ];
            kv.push(if name == "fttt.client.push" {
                ("rtt_us", ArgValue::F64(10.0))
            } else {
                ("work_us", ArgValue::F64(5.0))
            });
            j.record(name, TraceKind::Instant, kv);
            j.snapshot().to_jsonl()
        };
        let c = correlate(
            &load_wire(&one("fttt.client.push", 1)).unwrap(),
            &load_wire(&one("fttt.server.push", 2)).unwrap(),
        );
        assert_eq!(c.matched.len(), 1);
        assert_eq!(c.session_mismatches, 1);
        assert!(render_correlation(&c).contains("different sessions"));
    }

    #[test]
    fn empty_trace_renders_a_note() {
        let j = Journal::with_capacity(4);
        let text = render(&load(&j.snapshot().to_chrome_json()).unwrap());
        assert!(text.contains("no session rounds"), "{text}");
    }
}
