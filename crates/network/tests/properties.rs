//! Property-based tests for the network substrate.

use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wsn_geometry::{Point, Rect};
use wsn_network::{
    pair_count, pair_index, Deployment, FaultModel, GroupSampler, PairIter, SensorField, Uplink,
};
use wsn_signal::{Gaussian, PathLossModel};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The canonical pair enumeration is a bijection onto 0..C(n,2).
    #[test]
    fn pair_enumeration_bijection(n in 2usize..60) {
        let mut seen = vec![false; pair_count(n)];
        for (i, j) in PairIter::new(n) {
            prop_assert!(i < j && j < n);
            let idx = pair_index(i, j, n);
            prop_assert!(!seen[idx], "index {} hit twice", idx);
            seen[idx] = true;
        }
        prop_assert!(seen.iter().all(|&b| b));
    }

    /// Grid deployments always place the requested count inside the field,
    /// pairwise distinct.
    #[test]
    fn grid_deployment_well_formed(n in 2usize..50, side in 10.0..500.0f64) {
        let field = Rect::square(side);
        let d = Deployment::grid(n, field);
        prop_assert_eq!(d.len(), n);
        for (i, a) in d.nodes().iter().enumerate() {
            prop_assert!(field.contains(a.pos));
            for b in &d.nodes()[i + 1..] {
                prop_assert!(a.pos.distance(b.pos) > 1e-9);
            }
        }
    }

    /// Random deployments are reproducible and in-field.
    #[test]
    fn random_deployment_seeded(n in 2usize..40, seed in 0u64..10_000) {
        let field = Rect::square(100.0);
        let a = Deployment::random_uniform(
            n, field, &mut ChaCha8Rng::seed_from_u64(seed));
        let b = Deployment::random_uniform(
            n, field, &mut ChaCha8Rng::seed_from_u64(seed));
        prop_assert_eq!(&a, &b);
        prop_assert!(a.nodes().iter().all(|node| field.contains(node.pos)));
    }

    /// A sampling matrix never contains readings for out-of-range nodes,
    /// and in-range columns are full absent faults.
    #[test]
    fn sampling_respects_range(
        n in 2usize..12,
        seed in 0u64..1000,
        range in 10.0..120.0f64,
        k in 1usize..8,
    ) {
        let field = Rect::square(100.0);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let d = Deployment::random_uniform(n, field, &mut rng);
        let sf = SensorField::new(d, range);
        let target = Point::new(50.0, 50.0);
        let sampler = GroupSampler::new(PathLossModel::paper_default(), k);
        let g = sampler.sample(&sf, target, &mut rng);
        for (j, node) in sf.nodes().iter().enumerate() {
            let in_range = sf.in_range(node, target);
            prop_assert_eq!(g.node_responded(j), in_range);
            if in_range {
                prop_assert!(g.column(j).all(|r| r.is_some()));
            }
        }
    }

    /// Dead nodes never respond regardless of anything else.
    #[test]
    fn dead_nodes_stay_dead(seed in 0u64..1000, dead_idx in 0usize..5) {
        let field = Rect::square(100.0);
        let d = Deployment::grid(5, field);
        let sf = SensorField::new(d, 500.0);
        let dead = wsn_network::NodeId(dead_idx as u32);
        let sampler = GroupSampler::new(PathLossModel::paper_default(), 3)
            .with_fault(FaultModel::with_dead_nodes([dead]));
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = sampler.sample(&sf, Point::new(50.0, 50.0), &mut rng);
        prop_assert!(!g.node_responded(dead_idx));
    }

    /// The uplink only ever *removes* information, column-atomically.
    #[test]
    fn uplink_is_column_monotone(
        seed in 0u64..1000,
        loss in 0.0..1.0f64,
        deadline in 0.0..0.3f64,
    ) {
        let field = Rect::square(100.0);
        let d = Deployment::grid(6, field);
        let sf = SensorField::new(d, 500.0);
        let sampler = GroupSampler::new(PathLossModel::paper_default(), 4);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = sampler.sample(&sf, Point::new(40.0, 60.0), &mut rng);
        let link = Uplink::new(loss, Gaussian::new(0.05, 0.05), deadline);
        let (out, lat) = link.deliver(&g, &mut rng);
        for (j, l) in lat.iter().enumerate() {
            match l {
                Some(l) => {
                    prop_assert!(*l <= deadline + 1e-12);
                    // Delivered columns are bit-identical.
                    prop_assert!(out.column(j).eq(g.column(j)));
                }
                None => prop_assert!(out.column(j).all(|r| r.is_none())),
            }
        }
    }
}
