//! Serde round-trips for network types (only with `--features serde`).
#![cfg(feature = "serde")]

use wsn_geometry::{Point, Rect};
use wsn_network::{Deployment, FaultModel, GroupSampling, NodeId, SensorField};
use wsn_signal::Rss;

fn round_trip<T>(value: &T) -> T
where
    T: serde::Serialize + for<'de> serde::Deserialize<'de>,
{
    serde_json::from_str(&serde_json::to_string(value).expect("serialize")).expect("deserialize")
}

#[test]
fn deployment_and_field() {
    let d = Deployment::grid(6, Rect::square(100.0));
    assert_eq!(round_trip(&d), d);
    let f = SensorField::new(d, 40.0);
    let back = round_trip(&f);
    assert_eq!(back, f);
    assert_eq!(
        back.nodes_in_range(Point::new(50.0, 50.0)),
        f.nodes_in_range(Point::new(50.0, 50.0))
    );
}

#[test]
fn group_sampling_with_holes() {
    let mut g = GroupSampling::empty(3, 2);
    g.set(0, 0, Some(Rss::new(-55.5)));
    g.set(1, 2, Some(Rss::new(-62.0)));
    let back = round_trip(&g);
    assert_eq!(back, g);
    assert_eq!(back.missing_count(), g.missing_count());
}

#[test]
fn fault_model() {
    let f = FaultModel {
        node_failure_prob: 0.1,
        reading_drop_prob: 0.05,
        dead_nodes: [NodeId(2), NodeId(4)].into_iter().collect(),
    };
    assert_eq!(round_trip(&f), f);
}
