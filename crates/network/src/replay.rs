//! The determinism substrate: a zero-dependency running state digest.
//!
//! A fault campaign is a Monte-Carlo experiment, and its results are only
//! auditable if a re-run can *prove* it executed the same experiment. The
//! proof is a checksum: every per-round quantity that the simulation's
//! outcome depends on — session status, adaptive `k`, the matched face,
//! the estimate coordinates, the set of live nodes, and the mutable state
//! of every fault regime — is folded byte-by-byte into a [`Digest`], and
//! the per-round digests fold into per-trial and campaign checksums that
//! are pure functions of `(master seed, schedule, config)`.
//!
//! The hash is FNV-1a (64-bit): tiny, allocation-free, byte-order-defined,
//! and with no dependency footprint. It is *not* cryptographic — the
//! threat model is drift (a refactor silently changing simulation
//! behaviour, nondeterministic iteration order leaking into results), not
//! an adversary forging collisions.
//!
//! Everything folded into a digest goes through an explicit, documented
//! byte encoding (`u64` → little-endian bytes, `f64` → IEEE-754 bit
//! pattern, strings → length-prefixed UTF-8, booleans → one tag byte), so
//! a digest value is stable across platforms of equal float behaviour and
//! across refactors that do not change simulation semantics.

use crate::regime::RegimeEngine;
use crate::sampling::GroupSampling;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// A running 64-bit FNV-1a state digest.
///
/// All writes are order-sensitive: `write_u64(a); write_u64(b)` and
/// `write_u64(b); write_u64(a)` produce different values, which is the
/// point — the digest pins not just *what* happened but the canonical
/// order it is folded in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Digest(u64);

impl Default for Digest {
    fn default() -> Self {
        Self::new()
    }
}

impl Digest {
    /// A fresh digest at the FNV-1a offset basis.
    #[inline]
    pub fn new() -> Self {
        Digest(FNV_OFFSET)
    }

    /// Folds raw bytes.
    #[inline]
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.0 = h;
    }

    /// Folds a `u64` as its eight little-endian bytes.
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds an `f64` as the eight little-endian bytes of its IEEE-754 bit
    /// pattern. `-0.0` and `+0.0` therefore digest differently, as do
    /// distinct NaN payloads — bit-exactness is the contract, not numeric
    /// equality.
    #[inline]
    pub fn write_f64(&mut self, v: f64) {
        self.write_bytes(&v.to_bits().to_le_bytes());
    }

    /// Folds a boolean as a single `0`/`1` byte.
    #[inline]
    pub fn write_bool(&mut self, v: bool) {
        self.write_bytes(&[u8::from(v)]);
    }

    /// Folds a string as its byte length (`u64`) followed by its UTF-8
    /// bytes — length-prefixing keeps `("ab", "c")` and `("a", "bc")`
    /// distinct.
    #[inline]
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// Folds another digest's value (composition: per-round digests fold
    /// into a trial digest, trial digests into the campaign checksum).
    #[inline]
    pub fn write_digest(&mut self, other: Digest) {
        self.write_u64(other.value());
    }

    /// The current 64-bit digest value.
    #[inline]
    pub fn value(&self) -> u64 {
        self.0
    }
}

/// Renders a digest value in the canonical artifact form: `0x`-prefixed,
/// zero-padded, lowercase hex. Digests are serialized as *strings* in
/// JSON because JSON numbers are f64 and lose integer precision above
/// 2^53.
pub fn digest_hex(value: u64) -> String {
    format!("{value:#018x}")
}

/// Parses the canonical `0x…` hex form back to a value (the replay/diff
/// and shard-merge parsers use this).
pub fn parse_digest_hex(text: &str) -> Option<u64> {
    let hex = text.strip_prefix("0x")?;
    if hex.is_empty() || hex.len() > 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

/// Folds the live-node set of a grouping sampling: the node count followed
/// by one byte per node (`1` = the node delivered at least one reading
/// this round). This is the "live-node set" leg of the per-round state
/// digest — erasure regimes show up here even when the tracker absorbs
/// them without a status change.
pub fn digest_live_set(digest: &mut Digest, group: &GroupSampling) {
    digest.write_u64(group.node_count() as u64);
    for node in 0..group.node_count() {
        digest.write_bool(group.node_responded(node));
    }
}

/// Folds the full mutable regime state of an engine (see
/// [`RegimeEngine::state_digest`]) plus the live-node set of the current
/// grouping — the canonical "world state" fold a simulation loop calls
/// once per round, after `RegimeEngine::apply`.
pub fn digest_world(digest: &mut Digest, engine: &RegimeEngine, group: &GroupSampling) {
    digest.write_u64(engine.state_digest());
    digest_live_set(digest, group);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultModel;
    use crate::regime::RegimeKind;
    use crate::sampling::GroupSampling;
    use wsn_signal::Rss;

    #[test]
    fn fnv1a_golden_values() {
        // Pinned against the reference FNV-1a vectors: digesting the empty
        // input is the offset basis; "a" and "foobar" match the published
        // 64-bit FNV-1a values.
        assert_eq!(Digest::new().value(), 0xcbf2_9ce4_8422_2325);
        let mut d = Digest::new();
        d.write_bytes(b"a");
        assert_eq!(d.value(), 0xaf63_dc4c_8601_ec8c);
        let mut d = Digest::new();
        d.write_bytes(b"foobar");
        assert_eq!(d.value(), 0x85944171f73967e8);
    }

    #[test]
    fn writes_are_order_sensitive_and_typed() {
        let mut ab = Digest::new();
        ab.write_u64(1);
        ab.write_u64(2);
        let mut ba = Digest::new();
        ba.write_u64(2);
        ba.write_u64(1);
        assert_ne!(ab.value(), ba.value());

        // Length-prefixed strings keep concatenation ambiguity out.
        let mut split = Digest::new();
        split.write_str("ab");
        split.write_str("c");
        let mut other = Digest::new();
        other.write_str("a");
        other.write_str("bc");
        assert_ne!(split.value(), other.value());

        // f64 digests are bit patterns: -0.0 != +0.0.
        let mut pos = Digest::new();
        pos.write_f64(0.0);
        let mut neg = Digest::new();
        neg.write_f64(-0.0);
        assert_ne!(pos.value(), neg.value());
    }

    #[test]
    fn hex_round_trips() {
        for v in [0u64, 1, 0xdead_beef, u64::MAX, 0x0123_4567_89ab_cdef] {
            let hex = digest_hex(v);
            assert!(hex.starts_with("0x") && hex.len() == 18, "{hex}");
            assert_eq!(parse_digest_hex(&hex), Some(v));
        }
        assert_eq!(parse_digest_hex("0x"), None);
        assert_eq!(parse_digest_hex("42"), None);
        assert_eq!(parse_digest_hex("0x10000000000000000"), None);
    }

    #[test]
    fn live_set_digest_sees_single_node_outage() {
        let mut full = GroupSampling::empty(3, 2);
        for node in 0..3 {
            full.set(0, node, Some(Rss::new(-40.0)));
        }
        let mut partial = full.clone();
        partial.set(0, 1, None);

        let (mut a, mut b) = (Digest::new(), Digest::new());
        digest_live_set(&mut a, &full);
        digest_live_set(&mut b, &partial);
        assert_ne!(a.value(), b.value());
    }

    #[test]
    fn world_digest_tracks_regime_state() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let mut engine = RegimeEngine::new(4)
            .with(RegimeKind::Burst {
                p_enter: 0.9,
                p_exit: 0.1,
                loss_good: 0.0,
                loss_bad: 1.0,
            })
            .with(RegimeKind::Static(FaultModel::default()));
        let before = engine.state_digest();
        let mut group = GroupSampling::empty(4, 2);
        for node in 0..4 {
            group.set(0, node, Some(Rss::new(-50.0)));
        }
        engine.apply(1.0, &mut group, &mut rng);
        // With p_enter = 0.9 over four nodes the burst state almost surely
        // flipped at least one channel; seed 7 is pinned so this is exact.
        assert_ne!(engine.state_digest(), before);

        let (mut w1, mut w2) = (Digest::new(), Digest::new());
        digest_world(&mut w1, &engine, &group);
        digest_world(&mut w2, &engine, &group);
        assert_eq!(w1.value(), w2.value(), "digesting is a pure read");
    }
}
