//! The uplink layer: getting grouping samplings to the base station.
//!
//! The paper's system (Section 4.3) aggregates sampling results at base
//! stations or cluster heads; its outdoor testbed ships readings over an
//! 802.15.4 uplink to a MIB520-attached sink. Real uplinks lose and delay
//! packets, and a packet that misses the localization deadline is as good
//! as lost — another source for the `N̄_r` set the fault-tolerance rule
//! (eq. 6) absorbs. This module models that path: one message per sensor
//! per grouping (the sensor aggregates its `k` one-shot readings into one
//! packet), Bernoulli loss, Gaussian latency, hard deadline.

use crate::fault::{check_probability, ConfigError};
use crate::sampling::GroupSampling;
use rand::Rng;
use wsn_signal::Gaussian;

/// A sensor→sink uplink with loss, latency and a delivery deadline.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Uplink {
    /// Probability an entire message is lost.
    pub loss_prob: f64,
    /// Latency distribution, seconds (samples are clamped at 0).
    pub latency: Gaussian,
    /// Messages arriving after this many seconds are discarded
    /// (`f64::INFINITY` disables the deadline).
    pub deadline: f64,
}

impl Uplink {
    /// A lossless, instantaneous uplink.
    pub fn ideal() -> Self {
        Self {
            loss_prob: 0.0,
            latency: Gaussian::new(0.0, 0.0),
            deadline: f64::INFINITY,
        }
    }

    /// An uplink with the given loss probability, latency distribution and
    /// deadline.
    ///
    /// # Panics
    ///
    /// Panics if `loss_prob` is not a probability or `deadline` is
    /// negative/NaN.
    pub fn new(loss_prob: f64, latency: Gaussian, deadline: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&loss_prob),
            "loss probability out of range: {loss_prob}"
        );
        assert!(
            deadline >= 0.0 && !deadline.is_nan(),
            "deadline must be non-negative"
        );
        Self {
            loss_prob,
            latency,
            deadline,
        }
    }

    /// Checks every field, rejecting out-of-range values.
    ///
    /// [`Uplink::new`] already refuses bad values, but an `Uplink` can also
    /// arrive with its public fields filled in directly (deserialized from
    /// a config file, built by the [`crate::spec`] parser): this is the
    /// gate such a value must pass before it touches the data path.
    pub fn validate(&self) -> Result<(), ConfigError> {
        check_probability("loss_prob", self.loss_prob)?;
        if !self.latency.mean.is_finite() || !self.latency.std.is_finite() {
            return Err(ConfigError::new(format!(
                "latency distribution must be finite, got N({}, {}²)",
                self.latency.mean, self.latency.std
            )));
        }
        if self.latency.std < 0.0 {
            return Err(ConfigError::new(format!(
                "latency standard deviation must be non-negative, got {}",
                self.latency.std
            )));
        }
        if self.deadline.is_nan() || self.deadline < 0.0 {
            return Err(ConfigError::new(format!(
                "deadline must be non-negative seconds, got {}",
                self.deadline
            )));
        }
        Ok(())
    }

    /// Delivers one grouping sampling over the uplink: each responding
    /// node's column survives only if its message is neither lost nor
    /// late. Returns the sampling as seen by the base station, plus the
    /// per-node delivery latencies (`None` = not delivered).
    pub fn deliver<R: Rng + ?Sized>(
        &self,
        group: &GroupSampling,
        rng: &mut R,
    ) -> (GroupSampling, Vec<Option<f64>>) {
        let mut out = group.clone();
        let mut latencies = Vec::with_capacity(group.node_count());
        for j in 0..group.node_count() {
            if !group.node_responded(j) {
                latencies.push(None);
                continue;
            }
            let lost = self.loss_prob > 0.0 && rng.gen::<f64>() < self.loss_prob;
            let latency = self.latency.sample(rng).max(0.0);
            if lost || latency > self.deadline {
                for t in 0..group.instants() {
                    out.set(t, j, None);
                }
                latencies.push(None);
            } else {
                latencies.push(Some(latency));
            }
        }
        (out, latencies)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use wsn_signal::Rss;

    fn rng(seed: u64) -> rand_chacha::ChaCha8Rng {
        rand_chacha::ChaCha8Rng::seed_from_u64(seed)
    }

    fn full_group(nodes: usize, k: usize) -> GroupSampling {
        let mut g = GroupSampling::empty(nodes, k);
        for t in 0..k {
            for j in 0..nodes {
                g.set(t, j, Some(Rss::new(-50.0 - j as f64)));
            }
        }
        g
    }

    #[test]
    fn ideal_uplink_is_transparent() {
        let g = full_group(4, 3);
        let (out, lat) = Uplink::ideal().deliver(&g, &mut rng(1));
        assert_eq!(out, g);
        assert!(lat.iter().all(|l| *l == Some(0.0)));
    }

    #[test]
    fn loss_clears_whole_columns() {
        let g = full_group(10, 4);
        let link = Uplink::new(0.5, Gaussian::new(0.0, 0.0), f64::INFINITY);
        let (out, lat) = link.deliver(&g, &mut rng(2));
        for (j, l) in lat.iter().enumerate() {
            let delivered = out.node_responded(j);
            assert_eq!(delivered, l.is_some());
            if !delivered {
                // All-or-nothing per column.
                assert!(out.column(j).all(|r| r.is_none()));
            }
        }
        // With p = 0.5 over 10 nodes, some but not all should get through.
        let through = (0..10).filter(|&j| out.node_responded(j)).count();
        assert!(through > 0 && through < 10, "through = {through}");
    }

    #[test]
    fn deadline_discards_late_messages() {
        let g = full_group(50, 2);
        // Mean latency 100 ms ± 50 ms, deadline 100 ms: ~half arrive late.
        let link = Uplink::new(0.0, Gaussian::new(0.1, 0.05), 0.1);
        let (out, lat) = link.deliver(&g, &mut rng(3));
        let on_time = (0..50).filter(|&j| out.node_responded(j)).count();
        assert!(on_time > 10 && on_time < 40, "on-time = {on_time}");
        for l in lat.iter().flatten() {
            assert!(*l <= 0.1 && *l >= 0.0);
        }
    }

    #[test]
    fn silent_nodes_stay_silent() {
        let mut g = full_group(3, 2);
        for t in 0..2 {
            g.set(t, 1, None);
        }
        let (out, lat) = Uplink::ideal().deliver(&g, &mut rng(4));
        assert!(!out.node_responded(1));
        assert_eq!(lat[1], None);
    }

    #[test]
    fn loss_rate_statistics() {
        let g = full_group(1, 1);
        let link = Uplink::new(0.2, Gaussian::new(0.0, 0.0), f64::INFINITY);
        let mut r = rng(5);
        let trials = 50_000;
        let lost = (0..trials)
            .filter(|_| {
                let (out, _) = link.deliver(&g, &mut r);
                !out.node_responded(0)
            })
            .count() as f64
            / trials as f64;
        assert!((lost - 0.2).abs() < 0.01, "loss rate {lost}");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_loss_prob_rejected() {
        let _ = Uplink::new(1.5, Gaussian::new(0.0, 0.0), 1.0);
    }
}
