//! A deployment equipped with a sensing range.

use crate::deployment::Deployment;
use crate::node::{NodeId, SensorNode};
use wsn_geometry::{Point, Rect};

/// A sensor field: deployment + sensing range `R` (Table 1: `R = 40 m`).
///
/// The sensing range decides which sensors return readings for a given
/// target position; out-of-range sensors are indistinguishable from failed
/// ones downstream (they land in the paper's `N̄_r` set and are filled in by
/// the fault-tolerance rule, eq. 6).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SensorField {
    deployment: Deployment,
    sensing_range: f64,
}

impl SensorField {
    /// Combines a deployment with a sensing range.
    ///
    /// # Panics
    ///
    /// Panics if `sensing_range` is not strictly positive and finite.
    pub fn new(deployment: Deployment, sensing_range: f64) -> Self {
        assert!(
            sensing_range.is_finite() && sensing_range > 0.0,
            "sensing range must be positive, got {sensing_range}"
        );
        Self {
            deployment,
            sensing_range,
        }
    }

    /// The underlying deployment.
    #[inline]
    pub fn deployment(&self) -> &Deployment {
        &self.deployment
    }

    /// All sensors, in ID order.
    #[inline]
    pub fn nodes(&self) -> &[SensorNode] {
        self.deployment.nodes()
    }

    /// Number of sensors.
    #[inline]
    pub fn len(&self) -> usize {
        self.deployment.len()
    }

    /// Always `false`; included for API completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.deployment.is_empty()
    }

    /// The monitored rectangle.
    #[inline]
    pub fn rect(&self) -> Rect {
        self.deployment.field()
    }

    /// Sensing range `R` in metres.
    #[inline]
    pub fn sensing_range(&self) -> f64 {
        self.sensing_range
    }

    /// `true` if `node` can sense a target at `p`.
    #[inline]
    pub fn in_range(&self, node: &SensorNode, p: Point) -> bool {
        node.pos.distance_squared(p) <= self.sensing_range * self.sensing_range
    }

    /// IDs of all sensors able to sense a target at `p`.
    pub fn nodes_in_range(&self, p: Point) -> Vec<NodeId> {
        self.nodes()
            .iter()
            .filter(|n| self.in_range(n, p))
            .map(|n| n.id)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_field() -> SensorField {
        let d = Deployment::explicit(
            &[
                Point::new(0.0, 0.0),
                Point::new(10.0, 0.0),
                Point::new(50.0, 50.0),
            ],
            Rect::square(100.0),
        );
        SensorField::new(d, 20.0)
    }

    #[test]
    fn range_filtering() {
        let f = small_field();
        let near_origin = f.nodes_in_range(Point::new(1.0, 1.0));
        assert_eq!(near_origin, vec![NodeId(0), NodeId(1)]);
        let middle = f.nodes_in_range(Point::new(40.0, 40.0));
        assert_eq!(middle, vec![NodeId(2)]);
        let nowhere = f.nodes_in_range(Point::new(99.0, 0.0));
        assert!(nowhere.is_empty());
    }

    #[test]
    fn in_range_boundary_is_closed() {
        let f = small_field();
        let node = f.nodes()[0];
        assert!(f.in_range(&node, Point::new(20.0, 0.0)));
        assert!(!f.in_range(&node, Point::new(20.001, 0.0)));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_range_rejected() {
        let d = Deployment::grid(4, Rect::square(10.0));
        let _ = SensorField::new(d, 0.0);
    }
}
