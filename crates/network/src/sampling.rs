//! The grouping-sampling data path (paper Definition 3).
//!
//! For one localization, every sensor samples the target's signal `k` times
//! within a short window `Δt`; the paper treats the target as stationary
//! within the window (at a 10 Hz sampling rate and ≤ 5 m/s this holds to a
//! few decimetres). The result is a `k × n` matrix of readings, with holes
//! where a sensor was out of range, dead, or a one-shot sample was lost.

use crate::fault::FaultModel;
use crate::field::SensorField;
use rand::Rng;
use wsn_geometry::Point;
use wsn_signal::{PathLossModel, Rss};
use wsn_telemetry as telemetry;

/// The `k × n` matrix of one grouping sampling. Row = time instant,
/// column = node (in ID order); `None` marks a missing reading.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GroupSampling {
    nodes: usize,
    instants: usize,
    readings: Vec<Option<Rss>>,
}

impl GroupSampling {
    /// An empty matrix (all readings missing).
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn empty(nodes: usize, instants: usize) -> Self {
        assert!(
            nodes > 0 && instants > 0,
            "matrix dimensions must be positive"
        );
        Self {
            nodes,
            instants,
            readings: vec![None; nodes * instants],
        }
    }

    /// Builds a matrix from rows of readings (each row one instant,
    /// `row[j]` the reading of node `j`).
    ///
    /// # Panics
    ///
    /// Panics on ragged rows or an empty matrix.
    pub fn from_rows(rows: Vec<Vec<Option<Rss>>>) -> Self {
        assert!(!rows.is_empty(), "need at least one instant");
        let nodes = rows[0].len();
        assert!(nodes > 0, "need at least one node");
        let instants = rows.len();
        let mut readings = Vec::with_capacity(nodes * instants);
        for row in &rows {
            assert_eq!(row.len(), nodes, "ragged sampling matrix");
            readings.extend_from_slice(row);
        }
        Self {
            nodes,
            instants,
            readings,
        }
    }

    /// Number of node columns.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Number of sampling instants (the paper's `k`).
    #[inline]
    pub fn instants(&self) -> usize {
        self.instants
    }

    /// Reading of node `node` at `instant`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[inline]
    pub fn get(&self, instant: usize, node: usize) -> Option<Rss> {
        assert!(
            instant < self.instants && node < self.nodes,
            "index out of range"
        );
        self.readings[instant * self.nodes + node]
    }

    /// Sets one reading.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    #[inline]
    pub fn set(&mut self, instant: usize, node: usize, value: Option<Rss>) {
        assert!(
            instant < self.instants && node < self.nodes,
            "index out of range"
        );
        self.readings[instant * self.nodes + node] = value;
    }

    /// Column of node `node` across all instants.
    pub fn column(&self, node: usize) -> impl Iterator<Item = Option<Rss>> + '_ {
        assert!(node < self.nodes, "node index out of range");
        (0..self.instants).map(move |t| self.readings[t * self.nodes + node])
    }

    /// `true` if the node produced at least one reading (paper: the node is
    /// in `N_r`).
    pub fn node_responded(&self, node: usize) -> bool {
        self.column(node).any(|r| r.is_some())
    }

    /// Per-node response flags, in ID order.
    pub fn responding(&self) -> Vec<bool> {
        (0..self.nodes).map(|j| self.node_responded(j)).collect()
    }

    /// Count of missing readings in the whole matrix.
    pub fn missing_count(&self) -> usize {
        self.readings.iter().filter(|r| r.is_none()).count()
    }
}

/// How per-reading noise is drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SamplerNoise {
    /// Eq. 1's log-normal shadowing: Gaussian with the model's σ (the
    /// physical default).
    GaussianEq1,
    /// Bounded uniform noise of the given half-width (dB): the paper's
    /// idealized sensing model, where pair orders can only flip inside a
    /// bounded Apollonius band (see
    /// `wsn_signal::PathLossModel::band_half_width`).
    UniformBand {
        /// Noise half-width in dB.
        half_width: f64,
    },
}

/// Draws grouping samplings from a [`SensorField`] under a radio and fault
/// model.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GroupSampler {
    /// Radio model generating the RSS readings.
    pub model: PathLossModel,
    /// Sampling times `k` per grouping (Table 1: 3–9).
    pub samples: usize,
    /// Fault injection applied to nodes and readings.
    pub fault: FaultModel,
    /// Noise distribution (default: eq. 1's Gaussian).
    pub noise: SamplerNoise,
    /// Per-node calibration offsets in dB, added to every reading of the
    /// corresponding node (empty = perfectly calibrated). Models hardware
    /// gain variation between sensors: constant over time, unknown to the
    /// trackers.
    pub node_offsets: Vec<f64>,
}

impl GroupSampler {
    /// Creates a sampler with no faults.
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`.
    pub fn new(model: PathLossModel, samples: usize) -> Self {
        assert!(samples > 0, "need at least one sample per grouping");
        Self {
            model,
            samples,
            fault: FaultModel::none(),
            noise: SamplerNoise::GaussianEq1,
            node_offsets: Vec::new(),
        }
    }

    /// Sets per-node calibration offsets (dB). The vector length must
    /// match the sampled field's node count; missing entries are treated
    /// as zero.
    pub fn with_node_offsets(mut self, offsets: Vec<f64>) -> Self {
        assert!(
            offsets.iter().all(|o| o.is_finite()),
            "calibration offsets must be finite"
        );
        self.node_offsets = offsets;
        self
    }

    /// Replaces the fault model.
    ///
    /// # Panics
    ///
    /// Panics if `fault` fails [`FaultModel::validate`] — a model built by
    /// filling the public fields directly (e.g. from a config file) must
    /// not reach the sampling path with out-of-range probabilities.
    pub fn with_fault(mut self, fault: FaultModel) -> Self {
        if let Err(e) = fault.validate() {
            panic!("{e}");
        }
        self.fault = fault;
        self
    }

    /// Switches to the idealized bounded-noise model whose flip-possible
    /// region is the Apollonius band of ratio `c`.
    pub fn with_idealized_band(mut self, c: f64) -> Self {
        self.noise = SamplerNoise::UniformBand {
            half_width: self.model.band_half_width(c),
        };
        self
    }

    /// Performs one grouping sampling of a target at `target`.
    ///
    /// A node yields readings only if it is within sensing range and does
    /// not fail for this grouping; individual readings may still drop.
    pub fn sample<R: Rng + ?Sized>(
        &self,
        field: &SensorField,
        target: Point,
        rng: &mut R,
    ) -> GroupSampling {
        let n = field.len();
        let mut out = GroupSampling::empty(n, self.samples);
        // Fault tallies, accumulated locally and flushed once at the end —
        // with no telemetry sink the cost is a few dead integer adds.
        let mut silent_nodes = 0u64;
        let mut dropped = 0u64;
        let mut delivered = 0u64;
        for (j, node) in field.nodes().iter().enumerate() {
            if !field.in_range(node, target) || self.fault.node_fails(node.id, rng) {
                silent_nodes += 1;
                continue;
            }
            let d = node.distance_to(target);
            for t in 0..self.samples {
                if self.fault.reading_drops(rng) {
                    dropped += 1;
                    continue;
                }
                let reading = match self.noise {
                    SamplerNoise::GaussianEq1 => self.model.sample_rss(d, rng),
                    SamplerNoise::UniformBand { half_width } => {
                        self.model.sample_rss_bounded(d, half_width, rng)
                    }
                };
                let offset = self.node_offsets.get(j).copied().unwrap_or(0.0);
                out.set(t, j, Some(Rss::new(reading.dbm() + offset)));
                delivered += 1;
            }
        }
        if telemetry::enabled() {
            telemetry::counter_add("wsn.sampler.groupings", 1);
            telemetry::counter_add("wsn.sampler.silent_nodes", silent_nodes);
            telemetry::counter_add("wsn.sampler.readings_dropped", dropped);
            telemetry::counter_add("wsn.sampler.readings_delivered", delivered);
        }
        if telemetry::journal_enabled() {
            use telemetry::ArgValue;
            telemetry::trace_instant(
                "wsn.sampler.grouping",
                vec![
                    ("silent_nodes", ArgValue::U64(silent_nodes)),
                    ("dropped", ArgValue::U64(dropped)),
                    ("delivered", ArgValue::U64(delivered)),
                ],
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deployment::Deployment;
    use crate::node::NodeId;
    use rand::SeedableRng;
    use wsn_geometry::Rect;

    fn rng(seed: u64) -> rand_chacha::ChaCha8Rng {
        rand_chacha::ChaCha8Rng::seed_from_u64(seed)
    }

    fn field() -> SensorField {
        let d = Deployment::grid(4, Rect::square(40.0));
        SensorField::new(d, 60.0)
    }

    #[test]
    fn matrix_layout_round_trip() {
        let mut m = GroupSampling::empty(3, 2);
        assert_eq!(m.node_count(), 3);
        assert_eq!(m.instants(), 2);
        m.set(1, 2, Some(Rss::new(-50.0)));
        assert_eq!(m.get(1, 2), Some(Rss::new(-50.0)));
        assert_eq!(m.get(0, 2), None);
        assert_eq!(m.missing_count(), 5);
    }

    #[test]
    fn from_rows_matches_sets() {
        let r = Rss::new(-45.0);
        let m = GroupSampling::from_rows(vec![vec![Some(r), None], vec![None, Some(r)]]);
        assert_eq!(m.get(0, 0), Some(r));
        assert_eq!(m.get(0, 1), None);
        assert_eq!(m.get(1, 1), Some(r));
        let col0: Vec<_> = m.column(0).collect();
        assert_eq!(col0, vec![Some(r), None]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        let _ = GroupSampling::from_rows(vec![vec![None], vec![None, None]]);
    }

    #[test]
    fn faultless_sampling_is_complete() {
        let s = GroupSampler::new(PathLossModel::paper_default(), 5);
        let m = s.sample(&field(), Point::new(20.0, 20.0), &mut rng(1));
        assert_eq!(m.node_count(), 4);
        assert_eq!(m.instants(), 5);
        assert_eq!(m.missing_count(), 0);
        assert!(m.responding().iter().all(|&b| b));
    }

    #[test]
    fn out_of_range_nodes_do_not_respond() {
        // Range 15 m on a 40 m field: the far-corner grid node can't hear a
        // target near the origin corner.
        let d = Deployment::grid(4, Rect::square(40.0));
        let f = SensorField::new(d, 15.0);
        let s = GroupSampler::new(PathLossModel::paper_default(), 3);
        let m = s.sample(&f, Point::new(10.0, 10.0), &mut rng(2));
        assert!(m.node_responded(0), "nearest node must respond");
        assert!(!m.node_responded(3), "far corner node must be silent");
    }

    #[test]
    fn dead_nodes_yield_empty_columns() {
        let s = GroupSampler::new(PathLossModel::paper_default(), 4)
            .with_fault(FaultModel::with_dead_nodes([NodeId(1)]));
        let m = s.sample(&field(), Point::new(20.0, 20.0), &mut rng(3));
        assert!(!m.node_responded(1));
        assert!(m.node_responded(0));
        assert_eq!(m.missing_count(), 4);
    }

    #[test]
    fn reading_drops_thin_the_matrix() {
        let s = GroupSampler::new(PathLossModel::paper_default(), 50)
            .with_fault(FaultModel::with_reading_drop(0.5));
        let m = s.sample(&field(), Point::new(20.0, 20.0), &mut rng(4));
        let total = 4 * 50;
        let missing = m.missing_count();
        assert!(
            missing > total / 4 && missing < 3 * total / 4,
            "missing {missing}/{total}"
        );
    }

    #[test]
    fn sampling_is_reproducible_under_seed() {
        let s = GroupSampler::new(PathLossModel::paper_default(), 5)
            .with_fault(FaultModel::with_reading_drop(0.2));
        let a = s.sample(&field(), Point::new(12.0, 30.0), &mut rng(9));
        let b = s.sample(&field(), Point::new(12.0, 30.0), &mut rng(9));
        assert_eq!(a, b);
    }

    #[test]
    fn idealized_band_confines_flips() {
        // Two nodes 20 m apart; target 2 m off the midpoint toward node 0.
        // Under the idealized band of ratio 1.05 the distance ratio 8/12
        // is far outside the band ⟹ order must never flip; under Gaussian
        // noise (σ = 6) it flips often.
        let d = Deployment::explicit(
            &[Point::new(10.0, 20.0), Point::new(30.0, 20.0)],
            Rect::square(40.0),
        );
        let f = SensorField::new(d, 60.0);
        let target = Point::new(18.0, 20.0);
        let mut r = rng(8);
        let ideal = GroupSampler::new(PathLossModel::paper_default(), 1).with_idealized_band(1.05);
        for _ in 0..2_000 {
            let m = ideal.sample(&f, target, &mut r);
            assert!(
                m.get(0, 0).unwrap() > m.get(0, 1).unwrap(),
                "idealized order flipped"
            );
        }
        let gaussian = GroupSampler::new(PathLossModel::paper_default(), 1);
        let flips = (0..2_000)
            .filter(|_| {
                let m = gaussian.sample(&f, target, &mut r);
                m.get(0, 0).unwrap() < m.get(0, 1).unwrap()
            })
            .count();
        assert!(
            flips > 100,
            "Gaussian noise must flip sometimes, got {flips}"
        );
    }

    #[test]
    fn idealized_band_flips_inside_band() {
        // Target exactly on the bisector: flips must occur under any
        // positive noise width.
        let d = Deployment::explicit(
            &[Point::new(10.0, 20.0), Point::new(30.0, 20.0)],
            Rect::square(40.0),
        );
        let f = SensorField::new(d, 60.0);
        let target = Point::new(20.0, 20.0);
        let ideal = GroupSampler::new(PathLossModel::paper_default(), 1).with_idealized_band(1.2);
        let mut r = rng(9);
        let mut first_louder = 0;
        for _ in 0..2_000 {
            let m = ideal.sample(&f, target, &mut r);
            if m.get(0, 0).unwrap() > m.get(0, 1).unwrap() {
                first_louder += 1;
            }
        }
        let frac = first_louder as f64 / 2_000.0;
        assert!((frac - 0.5).abs() < 0.05, "bisector flip rate {frac}");
    }

    #[test]
    fn node_offsets_shift_readings() {
        let base = GroupSampler::new(PathLossModel::paper_default().noiseless(), 2);
        let offset = base.clone().with_node_offsets(vec![3.0, 0.0, -2.0, 0.0]);
        let mut r1 = rng(14);
        let mut r2 = rng(14);
        let target = Point::new(20.0, 20.0);
        let g0 = base.sample(&field(), target, &mut r1);
        let g1 = offset.sample(&field(), target, &mut r2);
        assert!((g1.get(0, 0).unwrap().dbm() - g0.get(0, 0).unwrap().dbm() - 3.0).abs() < 1e-12);
        assert_eq!(g1.get(0, 1), g0.get(0, 1));
        assert!((g1.get(1, 2).unwrap().dbm() - g0.get(1, 2).unwrap().dbm() + 2.0).abs() < 1e-12);
    }

    #[test]
    fn short_offset_vector_pads_with_zero() {
        let s = GroupSampler::new(PathLossModel::paper_default().noiseless(), 1)
            .with_node_offsets(vec![5.0]);
        let g = s.sample(&field(), Point::new(20.0, 20.0), &mut rng(15));
        // Node 3 has no configured offset: unshifted deterministic value.
        let clean = GroupSampler::new(PathLossModel::paper_default().noiseless(), 1).sample(
            &field(),
            Point::new(20.0, 20.0),
            &mut rng(15),
        );
        assert_eq!(g.get(0, 3), clean.get(0, 3));
        assert_ne!(g.get(0, 0), clean.get(0, 0));
    }

    #[test]
    fn nearer_node_is_louder_on_average() {
        let s = GroupSampler::new(PathLossModel::paper_default(), 1);
        let target = Point::new(5.0, 5.0); // next to node 0 of the grid
        let mut r = rng(11);
        let mut node0_louder = 0;
        let rounds = 2_000;
        for _ in 0..rounds {
            let m = s.sample(&field(), target, &mut r);
            if m.get(0, 0).unwrap() > m.get(0, 3).unwrap() {
                node0_louder += 1;
            }
        }
        let frac = node0_louder as f64 / rounds as f64;
        assert!(frac > 0.9, "P(near louder than far) = {frac}");
    }
}
