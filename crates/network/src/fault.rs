//! Fault injection for the sampling data path.
//!
//! The paper's fault-tolerance discussion (Section 4.4.3) assumes sensors
//! may fail to return results for a whole grouping sampling ("breakdown of
//! sensors or fault occurrence"). We model that directly, plus a finer
//! per-reading drop (a lost one-shot sample) that exercises Algorithm 1's
//! handling of ragged columns.

use crate::node::NodeId;
use rand::Rng;
use std::collections::BTreeSet;
use std::fmt;

/// A rejected fault/uplink/regime configuration, with a human-readable
/// reason. Returned by the `validate` methods and the schedule parser of
/// [`crate::spec`] so that bad values (a probability of 1.5, a negative
/// deadline) are refused at parse/construction time instead of silently
/// misbehaving mid-run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError(String);

impl ConfigError {
    /// Creates an error with the given reason.
    pub fn new(reason: impl Into<String>) -> Self {
        Self(reason.into())
    }

    /// The reason the configuration was rejected.
    pub fn reason(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.0)
    }
}

impl std::error::Error for ConfigError {}

/// Checks that `v` is a probability (`0 ≤ v ≤ 1`; NaN rejected).
pub(crate) fn check_probability(name: &str, v: f64) -> Result<(), ConfigError> {
    if (0.0..=1.0).contains(&v) {
        Ok(())
    } else {
        Err(ConfigError::new(format!(
            "{name} must be a probability in [0, 1], got {v}"
        )))
    }
}

/// Probabilistic and deterministic sensor faults.
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FaultModel {
    /// Probability that a node returns nothing for an entire grouping
    /// sampling (drawn independently per node per localization).
    pub node_failure_prob: f64,
    /// Probability that any individual reading is lost.
    pub reading_drop_prob: f64,
    /// Nodes that never respond (hard failures fixed for the whole run).
    pub dead_nodes: BTreeSet<NodeId>,
}

impl FaultModel {
    /// No faults at all.
    pub fn none() -> Self {
        Self::default()
    }

    /// Per-sampling node failure with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability.
    pub fn with_node_failure(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        Self {
            node_failure_prob: p,
            ..Self::default()
        }
    }

    /// Per-reading drop with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability.
    pub fn with_reading_drop(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        Self {
            reading_drop_prob: p,
            ..Self::default()
        }
    }

    /// Marks `nodes` permanently dead.
    pub fn with_dead_nodes<I: IntoIterator<Item = NodeId>>(nodes: I) -> Self {
        Self {
            dead_nodes: nodes.into_iter().collect(),
            ..Self::default()
        }
    }

    /// Checks every field, rejecting out-of-range probabilities.
    ///
    /// Constructors already refuse bad values, but a `FaultModel` can also
    /// arrive with its public fields filled in directly (deserialized from
    /// a config file, built by a spec parser): this is the single place
    /// such a value must pass before it enters the sampling path.
    pub fn validate(&self) -> Result<(), ConfigError> {
        check_probability("node_failure_prob", self.node_failure_prob)?;
        check_probability("reading_drop_prob", self.reading_drop_prob)?;
        Ok(())
    }

    /// `true` if this model can never remove a reading.
    pub fn is_none(&self) -> bool {
        self.node_failure_prob == 0.0 && self.reading_drop_prob == 0.0 && self.dead_nodes.is_empty()
    }

    /// Decides whether `node` fails for one whole grouping sampling.
    pub fn node_fails<R: Rng + ?Sized>(&self, node: NodeId, rng: &mut R) -> bool {
        if self.dead_nodes.contains(&node) {
            return true;
        }
        self.node_failure_prob > 0.0 && rng.gen::<f64>() < self.node_failure_prob
    }

    /// Decides whether one reading is dropped.
    pub fn reading_drops<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        self.reading_drop_prob > 0.0 && rng.gen::<f64>() < self.reading_drop_prob
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand_chacha::ChaCha8Rng {
        rand_chacha::ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn none_never_faults() {
        let f = FaultModel::none();
        assert!(f.is_none());
        let mut r = rng(0);
        for i in 0..100 {
            assert!(!f.node_fails(NodeId(i), &mut r));
            assert!(!f.reading_drops(&mut r));
        }
    }

    #[test]
    fn dead_nodes_always_fail() {
        let f = FaultModel::with_dead_nodes([NodeId(3), NodeId(5)]);
        let mut r = rng(1);
        for _ in 0..50 {
            assert!(f.node_fails(NodeId(3), &mut r));
            assert!(f.node_fails(NodeId(5), &mut r));
            assert!(!f.node_fails(NodeId(0), &mut r));
        }
    }

    #[test]
    fn failure_rate_matches_probability() {
        let f = FaultModel::with_node_failure(0.3);
        let mut r = rng(2);
        let n = 100_000;
        let fails = (0..n).filter(|_| f.node_fails(NodeId(0), &mut r)).count() as f64 / n as f64;
        assert!((fails - 0.3).abs() < 0.01, "rate {fails}");
    }

    #[test]
    fn drop_rate_matches_probability() {
        let f = FaultModel::with_reading_drop(0.1);
        let mut r = rng(3);
        let n = 100_000;
        let drops = (0..n).filter(|_| f.reading_drops(&mut r)).count() as f64 / n as f64;
        assert!((drops - 0.1).abs() < 0.01, "rate {drops}");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_rejected() {
        let _ = FaultModel::with_node_failure(1.5);
    }
}
