//! Sensor node identity and placement.

use std::fmt;
use wsn_geometry::Point;

/// Dense, zero-based sensor identifier.
///
/// The paper's value convention ("+1 means nearer to the smaller node ID",
/// Definitions 4 and 6) makes IDs semantically load-bearing: the suite keeps
/// them dense (`0..n`) and sorted everywhere so the pair enumeration of
/// [`crate::pairs`] is canonical.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NodeId(pub u32);

impl NodeId {
    /// Zero-based index into the deployment's node list.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A deployed sensor: identity plus position.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SensorNode {
    /// Node identifier (dense, equals its index in the deployment).
    pub id: NodeId,
    /// Position in the field, metres.
    pub pos: Point,
}

impl SensorNode {
    /// Creates a node.
    #[inline]
    pub const fn new(id: NodeId, pos: Point) -> Self {
        Self { id, pos }
    }

    /// Distance from this node to `target`.
    #[inline]
    pub fn distance_to(&self, target: Point) -> f64 {
        self.pos.distance(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_ordering_and_index() {
        assert!(NodeId(0) < NodeId(1));
        assert_eq!(NodeId(7).index(), 7);
        assert_eq!(format!("{}", NodeId(3)), "n3");
    }

    #[test]
    fn node_distance() {
        let n = SensorNode::new(NodeId(0), Point::new(0.0, 0.0));
        assert_eq!(n.distance_to(Point::new(3.0, 4.0)), 5.0);
    }
}
