//! Sensor deployments: grid, uniform-random, cross, explicit.

use crate::node::{NodeId, SensorNode};
use rand::Rng;
use wsn_geometry::{Point, Rect};

/// A concrete placement of sensors in the field.
///
/// IDs are always dense `0..n` in construction order, which fixes the
/// canonical pair enumeration (see [`crate::pairs`]).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Deployment {
    nodes: Vec<SensorNode>,
    field: Rect,
}

impl Deployment {
    /// Wraps explicit positions (all must lie inside `field`).
    ///
    /// # Panics
    ///
    /// Panics if any position falls outside `field` or fewer than two nodes
    /// are given (no pairs — nothing to track with).
    pub fn explicit(positions: &[Point], field: Rect) -> Self {
        assert!(
            positions.len() >= 2,
            "need at least two sensors, got {}",
            positions.len()
        );
        let nodes = positions
            .iter()
            .enumerate()
            .map(|(i, &pos)| {
                assert!(field.contains(pos), "node {i} at {pos} outside the field");
                SensorNode::new(NodeId(i as u32), pos)
            })
            .collect();
        Self { nodes, field }
    }

    /// Regular near-square grid of `n` sensors inside `field` (the paper's
    /// Fig. 10(a,b) "deployed in grid" scenario).
    ///
    /// Sensors are placed at the centres of an `r × c` lattice with
    /// `r·c ≥ n`, `r ≈ c`, row-major; surplus lattice sites are left empty.
    pub fn grid(n: usize, field: Rect) -> Self {
        assert!(n >= 2, "need at least two sensors, got {n}");
        let cols = (n as f64).sqrt().ceil() as usize;
        let rows = n.div_ceil(cols);
        let dx = field.width() / cols as f64;
        let dy = field.height() / rows as f64;
        let positions: Vec<Point> = (0..n)
            .map(|i| {
                let (row, col) = (i / cols, i % cols);
                Point::new(
                    field.min.x + (col as f64 + 0.5) * dx,
                    field.min.y + (row as f64 + 0.5) * dy,
                )
            })
            .collect();
        Self::explicit(&positions, field)
    }

    /// `n` sensors i.i.d. uniform over `field` (the paper's random
    /// deployment, Fig. 10(c,d) and all performance sweeps).
    pub fn random_uniform<R: Rng + ?Sized>(n: usize, field: Rect, rng: &mut R) -> Self {
        assert!(n >= 2, "need at least two sensors, got {n}");
        let positions: Vec<Point> = (0..n)
            .map(|_| {
                Point::new(
                    rng.gen_range(field.min.x..=field.max.x),
                    rng.gen_range(field.min.y..=field.max.y),
                )
            })
            .collect();
        Self::explicit(&positions, field)
    }

    /// The outdoor testbed's cross ("+") deployment (paper Fig. 13): one
    /// sensor at `center` and `arm_len` sensors spaced `spacing` metres
    /// along each of the four axis directions — `4·arm_len + 1` sensors.
    ///
    /// # Panics
    ///
    /// Panics if the cross does not fit inside `field`.
    pub fn cross(center: Point, arm_len: usize, spacing: f64, field: Rect) -> Self {
        assert!(
            spacing > 0.0 && spacing.is_finite(),
            "spacing must be positive"
        );
        let mut positions = vec![center];
        for step in 1..=arm_len {
            let d = step as f64 * spacing;
            positions.push(Point::new(center.x + d, center.y));
            positions.push(Point::new(center.x - d, center.y));
            positions.push(Point::new(center.x, center.y + d));
            positions.push(Point::new(center.x, center.y - d));
        }
        Self::explicit(&positions, field)
    }

    /// The deployed sensors, in ID order.
    #[inline]
    pub fn nodes(&self) -> &[SensorNode] {
        &self.nodes
    }

    /// Number of sensors.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always `false` (construction requires ≥ 2 nodes); included for API
    /// completeness.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The monitored field.
    #[inline]
    pub fn field(&self) -> Rect {
        self.field
    }

    /// Positions only, in ID order.
    pub fn positions(&self) -> Vec<Point> {
        self.nodes.iter().map(|n| n.pos).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn field() -> Rect {
        Rect::square(100.0)
    }

    #[test]
    fn explicit_assigns_dense_ids() {
        let d = Deployment::explicit(&[Point::new(1.0, 1.0), Point::new(2.0, 2.0)], field());
        assert_eq!(d.len(), 2);
        assert_eq!(d.nodes()[0].id, NodeId(0));
        assert_eq!(d.nodes()[1].id, NodeId(1));
    }

    #[test]
    #[should_panic(expected = "outside the field")]
    fn explicit_rejects_out_of_field() {
        let _ = Deployment::explicit(&[Point::new(1.0, 1.0), Point::new(200.0, 2.0)], field());
    }

    #[test]
    fn grid_layout_properties() {
        let d = Deployment::grid(9, field());
        assert_eq!(d.len(), 9);
        // 3×3 lattice on a 100 m field: centres at 100/6, 50, 500/6.
        let expect = 100.0 / 6.0;
        assert!((d.nodes()[0].pos.x - expect).abs() < 1e-9);
        assert!((d.nodes()[0].pos.y - expect).abs() < 1e-9);
        assert!((d.nodes()[4].pos.x - 50.0).abs() < 1e-9);
        // All in-field and distinct.
        for (i, a) in d.nodes().iter().enumerate() {
            assert!(field().contains(a.pos));
            for b in &d.nodes()[i + 1..] {
                assert!(a.pos.distance(b.pos) > 1.0);
            }
        }
    }

    #[test]
    fn grid_handles_non_square_counts() {
        for n in [2, 3, 5, 7, 10, 12, 40] {
            let d = Deployment::grid(n, field());
            assert_eq!(d.len(), n, "n={n}");
            for node in d.nodes() {
                assert!(field().contains(node.pos));
            }
        }
    }

    #[test]
    fn random_uniform_stays_in_field_and_is_seeded() {
        let mut r1 = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let mut r2 = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        let a = Deployment::random_uniform(25, field(), &mut r1);
        let b = Deployment::random_uniform(25, field(), &mut r2);
        assert_eq!(a, b, "same seed must reproduce the deployment");
        for node in a.nodes() {
            assert!(field().contains(node.pos));
        }
    }

    #[test]
    fn cross_shape_of_paper_testbed() {
        // 9 motes: centre + 2 per arm at 10 m spacing.
        let d = Deployment::cross(Point::new(50.0, 50.0), 2, 10.0, field());
        assert_eq!(d.len(), 9);
        assert_eq!(d.nodes()[0].pos, Point::new(50.0, 50.0));
        let xs: Vec<f64> = d.nodes().iter().map(|n| n.pos.x).collect();
        let ys: Vec<f64> = d.nodes().iter().map(|n| n.pos.y).collect();
        assert!(xs.contains(&70.0) && xs.contains(&30.0));
        assert!(ys.contains(&70.0) && ys.contains(&30.0));
        // Every node is on one of the two axes through the centre.
        for n in d.nodes() {
            assert!(n.pos.x == 50.0 || n.pos.y == 50.0);
        }
    }

    #[test]
    #[should_panic(expected = "outside the field")]
    fn cross_must_fit() {
        let _ = Deployment::cross(Point::new(95.0, 50.0), 2, 10.0, field());
    }
}
