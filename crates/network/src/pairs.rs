//! The canonical node-pair enumeration (paper Definitions 5 and 6).
//!
//! For `n` nodes there are `N = C(n,2)` pairs, enumerated in ascending
//! order: `(0,1), (0,2), …, (0,n−1), (1,2), …, (n−2,n−1)`. Both the sampling
//! vector and every face's signature vector index their components by this
//! order, so it lives in one place and is exercised hard by tests.

/// Number of unordered pairs of `n` nodes: `C(n, 2)`.
#[inline]
pub fn pair_count(n: usize) -> usize {
    n * n.saturating_sub(1) / 2
}

/// Component index of pair `(i, j)` (`i < j`, zero-based) in the canonical
/// enumeration over `n` nodes.
///
/// Pairs led by node `i` start after all pairs led by smaller nodes:
/// `Σ_{t<i} (n−1−t) = i·(2n−i−1)/2`.
///
/// # Panics
///
/// Panics if `i >= j` or `j >= n`.
#[inline]
pub fn pair_index(i: usize, j: usize, n: usize) -> usize {
    assert!(i < j && j < n, "pair ({i}, {j}) invalid for {n} nodes");
    i * (2 * n - i - 1) / 2 + (j - i - 1)
}

/// Iterator over all pairs `(i, j)` with `i < j < n` in canonical order.
#[derive(Debug, Clone)]
pub struct PairIter {
    n: usize,
    i: usize,
    j: usize,
}

impl PairIter {
    /// Enumerates pairs of `n` nodes.
    pub fn new(n: usize) -> Self {
        Self { n, i: 0, j: 1 }
    }
}

impl Iterator for PairIter {
    type Item = (usize, usize);

    fn next(&mut self) -> Option<(usize, usize)> {
        if self.n < 2 || self.i >= self.n - 1 {
            return None;
        }
        let out = (self.i, self.j);
        self.j += 1;
        if self.j == self.n {
            self.i += 1;
            self.j = self.i + 1;
        }
        Some(out)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        if self.n < 2 || self.i >= self.n - 1 {
            return (0, Some(0));
        }
        let emitted = pair_index(self.i, self.j, self.n);
        let left = pair_count(self.n) - emitted;
        (left, Some(left))
    }
}

impl ExactSizeIterator for PairIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_count_small_cases() {
        assert_eq!(pair_count(0), 0);
        assert_eq!(pair_count(1), 0);
        assert_eq!(pair_count(2), 1);
        assert_eq!(pair_count(4), 6);
        assert_eq!(pair_count(40), 780);
    }

    #[test]
    fn enumeration_matches_paper_order_for_four_nodes() {
        // Paper Section 4.2 example: (1,2),(1,3),(1,4),(2,3),(2,4),(3,4)
        // — zero-based here.
        let pairs: Vec<_> = PairIter::new(4).collect();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn pair_index_agrees_with_enumeration() {
        for n in 2..30 {
            for (expected, (i, j)) in PairIter::new(n).enumerate() {
                assert_eq!(pair_index(i, j, n), expected, "n={n} pair=({i},{j})");
            }
        }
    }

    #[test]
    fn iterator_is_exact_size() {
        for n in 0..20 {
            let it = PairIter::new(n);
            assert_eq!(it.len(), pair_count(n));
            assert_eq!(it.count(), pair_count(n));
        }
        let mut it = PairIter::new(5);
        it.next();
        it.next();
        assert_eq!(it.len(), pair_count(5) - 2);
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn pair_index_rejects_unordered() {
        let _ = pair_index(3, 3, 5);
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn pair_index_rejects_out_of_range() {
        let _ = pair_index(1, 5, 5);
    }
}
