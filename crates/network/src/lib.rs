//! Sensor-network substrate: nodes, deployments, the canonical node-pair
//! enumeration, the grouping-sampling data path, and fault injection.
//!
//! A tracking round in the paper works on a **grouping sampling**
//! (Definition 3): every sensor samples the target's signal `k` times within
//! a short window `Δt`, producing a `k × n` matrix of RSS readings. This
//! crate owns that data path:
//!
//! * [`SensorNode`] / [`NodeId`] — deployed sensors.
//! * [`deployment`] — grid, uniform-random, cross ("+", the paper's outdoor
//!   testbed shape) and explicit deployments.
//! * [`SensorField`] — a deployment plus a sensing range `R`; nodes farther
//!   than `R` from the target produce no readings, which downstream code
//!   treats exactly like failed nodes (paper Section 4.4.3).
//! * [`pairs`] — the paper's canonical ascending pair enumeration
//!   `(n₁,n₂), (n₁,n₃), …, (n_{n−1},n_n)` that both sampling and signature
//!   vectors index by.
//! * [`GroupSampler`] / [`GroupSampling`] — the sampling matrix, with
//!   [`FaultModel`]-driven node failures and per-reading drops.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod comms;
pub mod deployment;
pub mod energy;
pub mod fault;
pub mod field;
pub mod node;
pub mod pairs;
pub mod regime;
pub mod replay;
pub mod sampling;
pub mod spec;

pub use comms::Uplink;
pub use deployment::Deployment;
pub use energy::{EnergyLedger, EnergyModel};
pub use fault::{ConfigError, FaultModel};
pub use field::SensorField;
pub use node::{NodeId, SensorNode};
pub use pairs::{pair_count, pair_index, PairIter};
pub use regime::{ChurnEvent, RegimeEngine, RegimeKind};
pub use sampling::{GroupSampler, GroupSampling, SamplerNoise};
pub use spec::Schedule;
