//! A small text format for fault-regime schedules and uplink settings.
//!
//! The offline build vendors `serde` as a compile-only stub, so config
//! files go through this hand-rolled parser instead — and, per the same
//! rule the constructors enforce, every value is range-checked **at parse
//! time**: a `node_failure=1.5` or a negative deadline is rejected with a
//! line-numbered error before anything touches the data path.
//!
//! One directive per line; `#` starts a comment; keys are `key=value`
//! tokens in any order. Node lists are comma-separated IDs; omitting
//! `nodes=` means *all* nodes.
//!
//! ```text
//! # bursty channel + a blackout window + two lying sensors
//! burst enter=0.2 exit=0.5 loss_bad=0.9
//! outage from=20 until=30
//! stuck nodes=3 from=10
//! drift nodes=4 from=0 rate=0.2
//! churn nodes=1,2 from=5 every=2.5 dead_for=5
//! static node_failure=0.1 drop=0.05 dead=5,6
//! energy battery=0.05
//! uplink loss=0.1 latency_mean=0.05 latency_std=0.02 deadline=0.2
//! ```

use crate::comms::Uplink;
use crate::energy::EnergyModel;
use crate::fault::{ConfigError, FaultModel};
use crate::node::NodeId;
use crate::regime::{RegimeEngine, RegimeKind};
use std::collections::BTreeSet;
use wsn_signal::Gaussian;

/// A parsed schedule: an ordered list of fault regimes plus an optional
/// uplink. The schedule is deployment-independent; bind it to a node count
/// with [`Schedule::engine`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schedule {
    /// Regimes in file order (= application order).
    pub regimes: Vec<RegimeKind>,
    /// Uplink between the sensors and the sink, if the file configures one.
    pub uplink: Option<Uplink>,
}

impl Schedule {
    /// Parses a schedule file, validating every value.
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        let mut schedule = Schedule::default();
        for (idx, raw_line) in text.lines().enumerate() {
            let line = raw_line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            parse_line(line, &mut schedule)
                .map_err(|e| ConfigError::new(format!("line {}: {}", idx + 1, e.reason())))?;
        }
        Ok(schedule)
    }

    /// Builds the regime engine for a deployment of `nodes` sensors.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0` (regimes themselves were validated at parse
    /// time).
    pub fn engine(&self, nodes: usize) -> RegimeEngine {
        let mut engine = RegimeEngine::new(nodes);
        for r in &self.regimes {
            engine = engine.with(r.clone());
        }
        engine
    }
}

/// The `key=value` tokens of one directive, with consumption tracking so
/// unknown keys are reported.
struct Fields<'a> {
    pairs: Vec<(&'a str, &'a str, bool)>,
}

impl<'a> Fields<'a> {
    fn parse(tokens: &[&'a str]) -> Result<Self, ConfigError> {
        let mut pairs = Vec::with_capacity(tokens.len());
        for tok in tokens {
            let (k, v) = tok
                .split_once('=')
                .ok_or_else(|| ConfigError::new(format!("expected key=value, got `{tok}`")))?;
            pairs.push((k, v, false));
        }
        Ok(Self { pairs })
    }

    fn take(&mut self, key: &str) -> Option<&'a str> {
        for (k, v, used) in &mut self.pairs {
            if *k == key && !*used {
                *used = true;
                return Some(v);
            }
        }
        None
    }

    fn f64(&mut self, key: &str) -> Result<Option<f64>, ConfigError> {
        match self.take(key) {
            None => Ok(None),
            Some(v) => v
                .parse::<f64>()
                .map(Some)
                .map_err(|_| ConfigError::new(format!("{key}: cannot parse `{v}` as a number"))),
        }
    }

    fn required_f64(&mut self, key: &str) -> Result<f64, ConfigError> {
        self.f64(key)?
            .ok_or_else(|| ConfigError::new(format!("missing required key `{key}`")))
    }

    fn nodes(&mut self) -> Result<BTreeSet<NodeId>, ConfigError> {
        match self.take("nodes") {
            None => Ok(BTreeSet::new()),
            Some(list) => list
                .split(',')
                .map(|s| {
                    s.trim()
                        .parse::<u32>()
                        .map(NodeId)
                        .map_err(|_| ConfigError::new(format!("nodes: bad node id `{s}`")))
                })
                .collect(),
        }
    }

    fn finish(self) -> Result<(), ConfigError> {
        for (k, _, used) in &self.pairs {
            if !used {
                return Err(ConfigError::new(format!("unknown key `{k}`")));
            }
        }
        Ok(())
    }
}

fn parse_line(line: &str, schedule: &mut Schedule) -> Result<(), ConfigError> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let (directive, rest) = tokens.split_first().expect("non-empty line");
    let mut f = Fields::parse(rest)?;
    match *directive {
        "static" => {
            let fault = FaultModel {
                node_failure_prob: f.f64("node_failure")?.unwrap_or(0.0),
                reading_drop_prob: f.f64("drop")?.unwrap_or(0.0),
                dead_nodes: match f.take("dead") {
                    None => BTreeSet::new(),
                    Some(list) => {
                        list.split(',')
                            .map(|s| {
                                s.trim().parse::<u32>().map(NodeId).map_err(|_| {
                                    ConfigError::new(format!("dead: bad node id `{s}`"))
                                })
                            })
                            .collect::<Result<_, _>>()?
                    }
                },
            };
            f.finish()?;
            fault.validate()?;
            schedule.regimes.push(RegimeKind::Static(fault));
        }
        "burst" => {
            let kind = RegimeKind::Burst {
                p_enter: f.required_f64("enter")?,
                p_exit: f.required_f64("exit")?,
                loss_good: f.f64("loss_good")?.unwrap_or(0.0),
                loss_bad: f.f64("loss_bad")?.unwrap_or(1.0),
            };
            f.finish()?;
            kind.validate()?;
            schedule.regimes.push(kind);
        }
        "outage" => {
            let kind = RegimeKind::Outage {
                nodes: f.nodes()?,
                from: f.required_f64("from")?,
                until: f.f64("until")?.unwrap_or(f64::INFINITY),
            };
            f.finish()?;
            kind.validate()?;
            schedule.regimes.push(kind);
        }
        "energy" => {
            let battery_j = f.required_f64("battery")?;
            let default = EnergyModel::default();
            let per_sample = f.f64("per_sample")?.unwrap_or(default.per_sample);
            let per_message = f.f64("per_message")?.unwrap_or(default.per_message);
            let idle_power = f.f64("idle")?.unwrap_or(default.idle_power);
            f.finish()?;
            for (name, v) in [
                ("per_sample", per_sample),
                ("per_message", per_message),
                ("idle", idle_power),
            ] {
                if !v.is_finite() || v < 0.0 {
                    return Err(ConfigError::new(format!(
                        "{name} must be non-negative joules, got {v}"
                    )));
                }
            }
            let kind = RegimeKind::EnergyDepletion {
                model: EnergyModel::new(per_sample, per_message, idle_power),
                battery_j,
            };
            kind.validate()?;
            schedule.regimes.push(kind);
        }
        "stuck" => {
            let kind = RegimeKind::StuckAt {
                nodes: f.nodes()?,
                from: f.f64("from")?.unwrap_or(0.0),
            };
            f.finish()?;
            kind.validate()?;
            schedule.regimes.push(kind);
        }
        "drift" => {
            let kind = RegimeKind::Drift {
                nodes: f.nodes()?,
                from: f.f64("from")?.unwrap_or(0.0),
                rate_db_per_s: f.required_f64("rate")?,
            };
            f.finish()?;
            kind.validate()?;
            schedule.regimes.push(kind);
        }
        "churn" => {
            let kind = RegimeKind::Churn {
                nodes: f.nodes()?,
                from: f.f64("from")?.unwrap_or(0.0),
                every: f.required_f64("every")?,
                dead_for: f.f64("dead_for")?.unwrap_or(f64::INFINITY),
            };
            f.finish()?;
            kind.validate()?;
            schedule.regimes.push(kind);
        }
        "uplink" => {
            if schedule.uplink.is_some() {
                return Err(ConfigError::new("duplicate `uplink` directive"));
            }
            let uplink = Uplink {
                loss_prob: f.f64("loss")?.unwrap_or(0.0),
                latency: Gaussian {
                    mean: f.f64("latency_mean")?.unwrap_or(0.0),
                    std: f.f64("latency_std")?.unwrap_or(0.0),
                },
                deadline: f.f64("deadline")?.unwrap_or(f64::INFINITY),
            };
            f.finish()?;
            uplink.validate()?;
            schedule.uplink = Some(uplink);
        }
        other => {
            return Err(ConfigError::new(format!(
                "unknown directive `{other}` (expected static|burst|outage|energy|stuck|drift|churn|uplink)"
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_schedule_parses() {
        let text = "\
# exercise every directive
burst enter=0.2 exit=0.5 loss_bad=0.9
outage nodes=0,1,2 from=20 until=30
energy battery=0.05
stuck nodes=3 from=10
drift nodes=4 from=0 rate=0.2
churn nodes=7,8 from=5 every=2.5 dead_for=5
static node_failure=0.1 drop=0.05 dead=5,6
uplink loss=0.1 latency_mean=0.05 latency_std=0.02 deadline=0.2
";
        let s = Schedule::parse(text).expect("valid schedule");
        assert_eq!(s.regimes.len(), 7);
        assert_eq!(s.engine(10).regime_count(), 7);
        let uplink = s.uplink.expect("uplink configured");
        assert_eq!(uplink.loss_prob, 0.1);
        assert_eq!(uplink.deadline, 0.2);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let s = Schedule::parse("\n# nothing\n   \nburst enter=0 exit=1 # trailing\n").unwrap();
        assert_eq!(s.regimes.len(), 1);
    }

    #[test]
    fn out_of_range_probability_rejected_at_parse_time() {
        let err = Schedule::parse("static node_failure=1.5").unwrap_err();
        assert!(err.reason().contains("line 1"), "{err}");
        assert!(err.reason().contains("probability"), "{err}");
    }

    #[test]
    fn negative_deadline_rejected_at_parse_time() {
        let err = Schedule::parse("uplink deadline=-3").unwrap_err();
        assert!(err.reason().contains("deadline"), "{err}");
    }

    #[test]
    fn inverted_outage_window_rejected() {
        let err = Schedule::parse("outage from=30 until=20").unwrap_err();
        assert!(err.reason().contains("from ≤ until"), "{err}");
    }

    #[test]
    fn unknown_directive_and_key_rejected() {
        assert!(Schedule::parse("meteor strike=1")
            .unwrap_err()
            .reason()
            .contains("directive"));
        assert!(Schedule::parse("burst enter=0 exit=1 frequency=2")
            .unwrap_err()
            .reason()
            .contains("unknown key"));
    }

    #[test]
    fn missing_required_key_rejected() {
        let err = Schedule::parse("drift nodes=1").unwrap_err();
        assert!(err.reason().contains("rate"), "{err}");
    }

    #[test]
    fn bad_node_id_rejected() {
        let err = Schedule::parse("stuck nodes=1,frog").unwrap_err();
        assert!(err.reason().contains("bad node id"), "{err}");
    }

    #[test]
    fn churn_directive_parses_with_defaults() {
        let s = Schedule::parse("churn every=2.5").unwrap();
        assert_eq!(
            s.regimes,
            vec![RegimeKind::Churn {
                nodes: BTreeSet::new(),
                from: 0.0,
                every: 2.5,
                dead_for: f64::INFINITY,
            }]
        );
        let s = Schedule::parse("churn nodes=1,2 from=5 every=2.5 dead_for=5").unwrap();
        assert_eq!(
            s.regimes,
            vec![RegimeKind::Churn {
                nodes: [NodeId(1), NodeId(2)].into_iter().collect(),
                from: 5.0,
                every: 2.5,
                dead_for: 5.0,
            }]
        );
        // `every` is required; zero stagger rejected at parse time.
        assert!(Schedule::parse("churn from=5")
            .unwrap_err()
            .reason()
            .contains("every"));
        assert!(Schedule::parse("churn every=0")
            .unwrap_err()
            .reason()
            .contains("stagger"));
    }

    #[test]
    fn error_reports_correct_line() {
        let text = "burst enter=0.1 exit=0.9\nstatic drop=2.0\n";
        let err = Schedule::parse(text).unwrap_err();
        assert!(err.reason().starts_with("line 2"), "{err}");
    }
}
