//! Composable, time-evolving fault regimes.
//!
//! [`crate::fault::FaultModel`] is static and memoryless: i.i.d. drops and
//! a fixed dead set, the same on every localization. Real deployments fail
//! differently — losses come in bursts, nodes die mid-run (and sometimes
//! come back after a reboot), batteries deplete under the sampling load,
//! and a sensor can keep answering while its readings are garbage. This
//! module generalizes the fault layer into a [`RegimeEngine`]: an ordered
//! stack of [`RegimeKind`]s applied to every grouping sampling with the
//! current trace time, carrying whatever per-node state each regime needs
//! (Gilbert–Elliott channel states, energy ledgers, frozen readings).
//!
//! Two fault classes matter downstream (see DESIGN.md):
//!
//! * **erasure faults** (burst loss, outages, depletion, [`FaultModel`]
//!   drops) remove readings — the paper's `*`-rule (eq. 6) absorbs them by
//!   widening pair values, and accuracy degrades gracefully;
//! * **lying faults** ([`RegimeKind::StuckAt`], [`RegimeKind::Drift`])
//!   keep producing readings with wrong values — invisible to the `*`-rule
//!   by construction, detectable only behaviorally (the track-health
//!   monitor of `fttt::session`).

use crate::energy::{EnergyLedger, EnergyModel};
use crate::fault::{check_probability, ConfigError, FaultModel};
use crate::node::NodeId;
use crate::sampling::GroupSampling;
use rand::Rng;
use std::collections::BTreeSet;
use wsn_signal::Rss;
use wsn_telemetry as telemetry;

/// One ingredient of a fault regime. Stack several in a [`RegimeEngine`];
/// they are applied in insertion order, each seeing the output of the
/// previous one.
#[derive(Debug, Clone, PartialEq)]
pub enum RegimeKind {
    /// The original memoryless faults: i.i.d. per-round node failures,
    /// i.i.d. per-reading drops, and a permanently dead set.
    Static(FaultModel),
    /// Bursty, time-correlated loss: an independent two-state
    /// Gilbert–Elliott channel per node. Each round the node's channel
    /// enters the bad state with probability `p_enter` (from good) and
    /// leaves it with probability `p_exit` (from bad); the node's whole
    /// round message is then lost with probability `loss_bad` in the bad
    /// state and `loss_good` in the good state. Expected burst length is
    /// `1/p_exit` rounds.
    Burst {
        /// P(good → bad) per round.
        p_enter: f64,
        /// P(bad → good) per round.
        p_exit: f64,
        /// Per-round message loss probability while the channel is good.
        loss_good: f64,
        /// Per-round message loss probability while the channel is bad.
        loss_bad: f64,
    },
    /// Scheduled death and revival: the nodes are silent while
    /// `from ≤ t < until` and resume afterwards (`until = ∞` makes the
    /// death permanent). An empty node set means *all* nodes — a full
    /// blackout window.
    Outage {
        /// Affected nodes (empty = every node).
        nodes: BTreeSet<NodeId>,
        /// Window start, seconds.
        from: f64,
        /// Window end, seconds (exclusive; `f64::INFINITY` = forever).
        until: f64,
    },
    /// Energy-coupled death: every round each node is charged for its
    /// delivered readings per `model` (plus idle power between rounds);
    /// once a node's cumulative consumption exceeds `battery_j` joules it
    /// is dead for the rest of the run.
    EnergyDepletion {
        /// Energy prices.
        model: EnergyModel,
        /// Per-node battery budget, joules.
        battery_j: f64,
    },
    /// Stuck-at sensor: from `from` on, the node keeps responding but
    /// every reading repeats the last value it produced before the onset —
    /// a *lying* fault the `*`-rule cannot see, because no reading is
    /// missing. A node that never produced a pre-onset reading stays
    /// silent.
    StuckAt {
        /// Affected nodes (empty = every node).
        nodes: BTreeSet<NodeId>,
        /// Onset time, seconds.
        from: f64,
    },
    /// Calibration drift: from `from` on, every reading of the nodes gains
    /// a bias of `rate_db_per_s · (t − from)` dB — the second lying fault,
    /// a slow walk away from the truth rather than a freeze.
    Drift {
        /// Affected nodes (empty = every node).
        nodes: BTreeSet<NodeId>,
        /// Onset time, seconds.
        from: f64,
        /// Bias growth rate, dB per second (either sign).
        rate_db_per_s: f64,
    },
    /// Staggered *topology* churn: the `q`-th affected node dies at
    /// `from + q·every` and revives `dead_for` seconds later
    /// (`f64::INFINITY` = never). While dead the node is silenced like an
    /// [`RegimeKind::Outage`] — but unlike an outage, churn is a
    /// *structural* change: the death/birth schedule is also surfaced via
    /// [`RegimeEngine::churn_events_between`] so the tracking layer can
    /// repair its face map (retire/re-rasterize the node's pair planes)
    /// at the same simulation times. Stateless and RNG-free, so adding a
    /// churn regime to a schedule perturbs no other regime's random
    /// stream.
    Churn {
        /// Affected nodes (empty = every node), churned in ascending id
        /// order.
        nodes: BTreeSet<NodeId>,
        /// Time of the first death, seconds.
        from: f64,
        /// Stagger between consecutive deaths, seconds.
        every: f64,
        /// How long each node stays dead (`f64::INFINITY` = forever).
        dead_for: f64,
    },
}

impl RegimeKind {
    /// Checks every parameter, rejecting out-of-range probabilities,
    /// inverted windows and non-finite rates.
    pub fn validate(&self) -> Result<(), ConfigError> {
        match self {
            RegimeKind::Static(fault) => fault.validate(),
            RegimeKind::Burst {
                p_enter,
                p_exit,
                loss_good,
                loss_bad,
            } => {
                check_probability("burst p_enter", *p_enter)?;
                check_probability("burst p_exit", *p_exit)?;
                check_probability("burst loss_good", *loss_good)?;
                check_probability("burst loss_bad", *loss_bad)
            }
            RegimeKind::Outage { from, until, .. } => {
                if from.is_nan() || until.is_nan() || *from > *until {
                    return Err(ConfigError::new(format!(
                        "outage window must satisfy from ≤ until, got [{from}, {until})"
                    )));
                }
                Ok(())
            }
            RegimeKind::EnergyDepletion { battery_j, .. } => {
                if !battery_j.is_finite() || *battery_j < 0.0 {
                    return Err(ConfigError::new(format!(
                        "battery budget must be non-negative joules, got {battery_j}"
                    )));
                }
                Ok(())
            }
            RegimeKind::StuckAt { from, .. } => {
                if from.is_nan() {
                    return Err(ConfigError::new("stuck-at onset time must not be NaN"));
                }
                Ok(())
            }
            RegimeKind::Drift {
                from,
                rate_db_per_s,
                ..
            } => {
                if from.is_nan() {
                    return Err(ConfigError::new("drift onset time must not be NaN"));
                }
                if !rate_db_per_s.is_finite() {
                    return Err(ConfigError::new(format!(
                        "drift rate must be finite dB/s, got {rate_db_per_s}"
                    )));
                }
                Ok(())
            }
            RegimeKind::Churn {
                from,
                every,
                dead_for,
                ..
            } => {
                if from.is_nan() {
                    return Err(ConfigError::new("churn start time must not be NaN"));
                }
                if !every.is_finite() || *every <= 0.0 {
                    return Err(ConfigError::new(format!(
                        "churn stagger must be positive seconds, got {every}"
                    )));
                }
                if dead_for.is_nan() || *dead_for <= 0.0 {
                    return Err(ConfigError::new(format!(
                        "churn dead_for must be positive seconds (∞ = forever), got {dead_for}"
                    )));
                }
                Ok(())
            }
        }
    }
}

/// One scheduled topology change emitted by a [`RegimeKind::Churn`]
/// regime, as consumed by the tracking layer's face-map repair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnEvent {
    /// Simulation time of the change, seconds.
    pub t: f64,
    /// Deployment index of the churned node.
    pub node: usize,
    /// `true` for a death, `false` for a revival.
    pub death: bool,
}

/// Per-regime mutable state, kept alongside its [`RegimeKind`].
#[derive(Debug, Clone, PartialEq)]
enum RegimeState {
    /// No state needed.
    Stateless,
    /// Gilbert–Elliott channel state per node (`true` = bad).
    Burst { bad: Vec<bool> },
    /// Energy ledger plus the depleted flags and the previous round's time
    /// (for idle charging between rounds).
    Energy {
        ledger: EnergyLedger,
        dead: Vec<bool>,
        last_t: Option<f64>,
    },
    /// Last pre-onset reading per node.
    Stuck { frozen: Vec<Option<Rss>> },
}

#[derive(Debug, Clone, PartialEq)]
struct Entry {
    kind: RegimeKind,
    state: RegimeState,
}

/// An ordered, stateful stack of fault regimes over `nodes` sensors.
///
/// Feed every grouping sampling through [`RegimeEngine::apply`] with its
/// trace time (`fttt`'s session/tracker `*_with` hooks do exactly that);
/// the engine mutates the matrix in place and advances its internal state.
/// Calls must come in non-decreasing time order for the stateful regimes
/// to make sense; the engine itself does not enforce monotonicity.
#[derive(Debug, Clone, PartialEq)]
pub struct RegimeEngine {
    nodes: usize,
    entries: Vec<Entry>,
}

impl RegimeEngine {
    /// An engine over `nodes` sensors with no regimes (a no-op transform).
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`.
    pub fn new(nodes: usize) -> Self {
        assert!(nodes > 0, "need at least one node");
        Self {
            nodes,
            entries: Vec::new(),
        }
    }

    /// Adds a regime to the stack (applied after all earlier ones).
    ///
    /// # Panics
    ///
    /// Panics if the regime fails [`RegimeKind::validate`].
    pub fn with(self, kind: RegimeKind) -> Self {
        match self.try_with(kind) {
            Ok(engine) => engine,
            Err(e) => panic!("{e}"),
        }
    }

    /// Adds a regime, rejecting invalid parameters instead of panicking.
    pub fn try_with(mut self, kind: RegimeKind) -> Result<Self, ConfigError> {
        kind.validate()?;
        let state = match &kind {
            RegimeKind::Burst { .. } => RegimeState::Burst {
                bad: vec![false; self.nodes],
            },
            RegimeKind::EnergyDepletion { model, .. } => RegimeState::Energy {
                ledger: EnergyLedger::new(*model, self.nodes),
                dead: vec![false; self.nodes],
                last_t: None,
            },
            RegimeKind::StuckAt { .. } => RegimeState::Stuck {
                frozen: vec![None; self.nodes],
            },
            _ => RegimeState::Stateless,
        };
        self.entries.push(Entry { kind, state });
        Ok(self)
    }

    /// Number of sensors this engine was built for.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Number of stacked regimes.
    pub fn regime_count(&self) -> usize {
        self.entries.len()
    }

    /// Digests the engine's full mutable state (Gilbert–Elliott channel
    /// flags, energy ledgers with depletion flags and the idle-charging
    /// clock, stuck-at frozen readings) plus a tag per regime kind, in
    /// stack order.
    ///
    /// This is the "regime state" leg of the per-round replay checksum
    /// (see [`crate::replay`]): two engines digest equal iff they would
    /// transform all future samplings identically given identical RNG
    /// draws. Stateless regimes contribute only their tag — their behavior
    /// is pinned by the schedule text, which the campaign checksum folds
    /// separately.
    pub fn state_digest(&self) -> u64 {
        let mut d = crate::replay::Digest::new();
        d.write_u64(self.nodes as u64);
        d.write_u64(self.entries.len() as u64);
        for entry in &self.entries {
            let tag: u8 = match entry.kind {
                RegimeKind::Static(_) => 0,
                RegimeKind::Burst { .. } => 1,
                RegimeKind::Outage { .. } => 2,
                RegimeKind::EnergyDepletion { .. } => 3,
                RegimeKind::StuckAt { .. } => 4,
                RegimeKind::Drift { .. } => 5,
                RegimeKind::Churn { .. } => 6,
            };
            d.write_bytes(&[tag]);
            match &entry.state {
                RegimeState::Stateless => {}
                RegimeState::Burst { bad } => {
                    for &b in bad {
                        d.write_bool(b);
                    }
                }
                RegimeState::Energy {
                    ledger,
                    dead,
                    last_t,
                } => {
                    for &j in ledger.per_node() {
                        d.write_f64(j);
                    }
                    for &b in dead {
                        d.write_bool(b);
                    }
                    d.write_bool(last_t.is_some());
                    d.write_f64(last_t.unwrap_or(0.0));
                }
                RegimeState::Stuck { frozen } => {
                    for reading in frozen {
                        d.write_bool(reading.is_some());
                        d.write_f64(reading.map_or(0.0, Rss::dbm));
                    }
                }
            }
        }
        d.value()
    }

    /// Applies every regime, in order, to one grouping sampling taken at
    /// trace time `t`, advancing the engine's state.
    ///
    /// # Panics
    ///
    /// Panics if the sampling's node count differs from the engine's.
    pub fn apply<R: Rng + ?Sized>(&mut self, t: f64, group: &mut GroupSampling, rng: &mut R) {
        assert_eq!(group.node_count(), self.nodes, "node count mismatch");
        // Erasure/lying tallies, accumulated locally and flushed once — the
        // disabled-telemetry path pays two dead integer adds per regime.
        let mut dropped = 0u64;
        let mut lying = 0u64;
        for entry in &mut self.entries {
            match (&entry.kind, &mut entry.state) {
                (RegimeKind::Static(fault), RegimeState::Stateless) => {
                    dropped += apply_static(fault, group, rng);
                }
                (
                    RegimeKind::Burst {
                        p_enter,
                        p_exit,
                        loss_good,
                        loss_bad,
                    },
                    RegimeState::Burst { bad },
                ) => {
                    for (j, is_bad) in bad.iter_mut().enumerate() {
                        // Advance the channel, then draw this round's loss.
                        let flip = rng.gen::<f64>();
                        *is_bad = if *is_bad {
                            flip >= *p_exit
                        } else {
                            flip < *p_enter
                        };
                        let loss = if *is_bad { *loss_bad } else { *loss_good };
                        if loss > 0.0 && rng.gen::<f64>() < loss {
                            dropped += clear_column(group, j);
                        }
                    }
                }
                (RegimeKind::Outage { nodes, from, until }, RegimeState::Stateless) => {
                    if t >= *from && t < *until {
                        for j in affected(nodes, self.nodes) {
                            dropped += clear_column(group, j);
                        }
                    }
                }
                (
                    RegimeKind::EnergyDepletion { battery_j, .. },
                    RegimeState::Energy {
                        ledger,
                        dead,
                        last_t,
                    },
                ) => {
                    // Dead nodes produce nothing and consume nothing.
                    for (j, is_dead) in dead.iter().enumerate() {
                        if *is_dead {
                            dropped += clear_column(group, j);
                        }
                    }
                    if let Some(prev) = *last_t {
                        ledger.charge_idle((t - prev).max(0.0));
                    }
                    *last_t = Some(t);
                    ledger.charge_grouping(group);
                    for (j, consumed) in ledger.per_node().iter().enumerate() {
                        if *consumed > *battery_j {
                            dead[j] = true;
                        }
                    }
                }
                (RegimeKind::StuckAt { nodes, from }, RegimeState::Stuck { frozen }) => {
                    for j in affected(nodes, self.nodes) {
                        if t < *from {
                            // Still healthy: remember the latest reading.
                            if let Some(last) = group.column(j).flatten().last() {
                                frozen[j] = Some(last);
                            }
                        } else if let Some(v) = frozen[j] {
                            // Lying: the node answers every instant with
                            // the frozen value, even where the raw matrix
                            // had holes.
                            for inst in 0..group.instants() {
                                group.set(inst, j, Some(v));
                            }
                            lying += group.instants() as u64;
                        }
                    }
                }
                (
                    RegimeKind::Drift {
                        nodes,
                        from,
                        rate_db_per_s,
                    },
                    RegimeState::Stateless,
                ) => {
                    if t >= *from {
                        let bias = rate_db_per_s * (t - from);
                        for j in affected(nodes, self.nodes) {
                            for inst in 0..group.instants() {
                                if let Some(r) = group.get(inst, j) {
                                    group.set(inst, j, Some(Rss::new(r.dbm() + bias)));
                                    lying += 1;
                                }
                            }
                        }
                    }
                }
                (
                    RegimeKind::Churn {
                        nodes,
                        from,
                        every,
                        dead_for,
                    },
                    RegimeState::Stateless,
                ) => {
                    for (q, j) in affected(nodes, self.nodes).into_iter().enumerate() {
                        let death_t = from + q as f64 * every;
                        if t >= death_t && t - death_t < *dead_for {
                            dropped += clear_column(group, j);
                        }
                    }
                }
                (kind, state) => {
                    unreachable!("regime state mismatch: {kind:?} with {state:?}")
                }
            }
        }
        if telemetry::enabled() && !self.entries.is_empty() {
            telemetry::counter_add("wsn.regime.activations", self.entries.len() as u64);
            telemetry::counter_add("wsn.regime.readings_dropped", dropped);
            telemetry::counter_add("wsn.regime.readings_lying", lying);
        }
        // Journal: only rounds where a regime actually corrupted the
        // grouping are worth a timeline entry.
        if telemetry::journal_enabled() && dropped + lying > 0 {
            use telemetry::ArgValue;
            telemetry::trace_instant(
                "wsn.regime.apply",
                vec![
                    ("t", ArgValue::F64(t)),
                    ("dropped", ArgValue::U64(dropped)),
                    ("lying", ArgValue::U64(lying)),
                ],
            );
        }
    }

    /// The topology changes every stacked [`RegimeKind::Churn`] regime
    /// schedules in the half-open window `(prev_t, t]` (`prev_t = None`
    /// means "since the beginning of time"), sorted by `(time, node)`.
    ///
    /// The session layer calls this once per round, *before* sampling,
    /// and applies each event as a face-map repair — so the structural
    /// change (planes retired/added) lands at the same simulation time as
    /// the behavioral one (the silenced column in
    /// [`RegimeEngine::apply`]). Pure function of the schedule: no state
    /// is read or advanced and no RNG is drawn, which keeps churned and
    /// unchurned runs' random streams aligned.
    pub fn churn_events_between(&self, prev_t: Option<f64>, t: f64) -> Vec<ChurnEvent> {
        let lo = prev_t.unwrap_or(f64::NEG_INFINITY);
        let mut events = Vec::new();
        let mut push = |et: f64, node: usize, death: bool| {
            if et > lo && et <= t {
                events.push(ChurnEvent { t: et, node, death });
            }
        };
        for entry in &self.entries {
            if let RegimeKind::Churn {
                nodes,
                from,
                every,
                dead_for,
            } = &entry.kind
            {
                for (q, j) in affected(nodes, self.nodes).into_iter().enumerate() {
                    let death_t = from + q as f64 * every;
                    push(death_t, j, true);
                    if dead_for.is_finite() {
                        push(death_t + dead_for, j, false);
                    }
                }
            }
        }
        events.sort_by(|a, b| {
            a.t.partial_cmp(&b.t)
                .expect("finite event times")
                .then(a.node.cmp(&b.node))
        });
        events
    }
}

/// The column indices a node set addresses (empty set = every node).
fn affected(nodes: &BTreeSet<NodeId>, n: usize) -> Vec<usize> {
    if nodes.is_empty() {
        (0..n).collect()
    } else {
        nodes
            .iter()
            .map(|id| id.index())
            .filter(|&j| j < n)
            .collect()
    }
}

/// Silences a node's column, returning how many present readings it erased.
fn clear_column(group: &mut GroupSampling, j: usize) -> u64 {
    let mut cleared = 0;
    for inst in 0..group.instants() {
        if group.get(inst, j).is_some() {
            cleared += 1;
        }
        group.set(inst, j, None);
    }
    cleared
}

/// The [`FaultModel`] semantics of the sampler, replayed at the engine
/// layer: one failure draw per node per round, one drop draw per reading.
/// Returns the number of readings erased.
fn apply_static<R: Rng + ?Sized>(
    fault: &FaultModel,
    group: &mut GroupSampling,
    rng: &mut R,
) -> u64 {
    let mut dropped = 0u64;
    for j in 0..group.node_count() {
        if fault.node_fails(NodeId(j as u32), rng) {
            dropped += clear_column(group, j);
            continue;
        }
        for inst in 0..group.instants() {
            if group.get(inst, j).is_some() && fault.reading_drops(rng) {
                group.set(inst, j, None);
                dropped += 1;
            }
        }
    }
    dropped
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng(seed: u64) -> rand_chacha::ChaCha8Rng {
        rand_chacha::ChaCha8Rng::seed_from_u64(seed)
    }

    fn full_group(nodes: usize, k: usize) -> GroupSampling {
        let mut g = GroupSampling::empty(nodes, k);
        for t in 0..k {
            for j in 0..nodes {
                g.set(t, j, Some(Rss::new(-50.0 - j as f64)));
            }
        }
        g
    }

    #[test]
    fn empty_engine_is_identity() {
        let mut e = RegimeEngine::new(4);
        let mut g = full_group(4, 3);
        let before = g.clone();
        e.apply(0.0, &mut g, &mut rng(1));
        assert_eq!(g, before);
    }

    #[test]
    fn static_regime_matches_fault_model_semantics() {
        let mut e =
            RegimeEngine::new(5).with(RegimeKind::Static(FaultModel::with_dead_nodes([NodeId(2)])));
        let mut g = full_group(5, 3);
        e.apply(0.0, &mut g, &mut rng(2));
        assert!(!g.node_responded(2));
        assert!(g.node_responded(0));
    }

    #[test]
    fn burst_loss_is_correlated() {
        // High persistence (p_exit small) ⟹ losses cluster in time. Count
        // round-over-round agreement of per-node delivery against an
        // i.i.d. Bernoulli with the same marginal loss rate.
        let rounds = 4_000;
        let run = |p_enter: f64, p_exit: f64, loss_bad: f64, seed: u64| -> (f64, f64) {
            let mut e = RegimeEngine::new(1).with(RegimeKind::Burst {
                p_enter,
                p_exit,
                loss_good: 0.0,
                loss_bad,
            });
            let mut r = rng(seed);
            let mut lost_prev = false;
            let mut losses = 0usize;
            let mut repeats = 0usize;
            for i in 0..rounds {
                let mut g = full_group(1, 2);
                e.apply(i as f64, &mut g, &mut r);
                let lost = !g.node_responded(0);
                if lost {
                    losses += 1;
                }
                if i > 0 && lost && lost_prev {
                    repeats += 1;
                }
                lost_prev = lost;
            }
            (
                losses as f64 / rounds as f64,
                repeats as f64 / losses.max(1) as f64,
            )
        };
        // Bursty: stationary P(bad) = 0.1/(0.1+0.1) = 0.5, always lost in
        // bad ⟹ loss rate ≈ 0.5 but P(lost | lost before) ≈ 0.9.
        let (rate, persistence) = run(0.1, 0.1, 1.0, 3);
        assert!((rate - 0.5).abs() < 0.05, "burst loss rate {rate}");
        assert!(persistence > 0.8, "burst persistence {persistence}");
        // Memoryless control at the same rate: persistence ≈ rate.
        let (rate_iid, persistence_iid) = run(0.5, 0.5, 1.0, 4);
        assert!((rate_iid - 0.5).abs() < 0.05, "iid loss rate {rate_iid}");
        assert!(persistence_iid < 0.6, "iid persistence {persistence_iid}");
    }

    #[test]
    fn outage_window_kills_and_revives() {
        let mut e = RegimeEngine::new(3).with(RegimeKind::Outage {
            nodes: [NodeId(1)].into_iter().collect(),
            from: 10.0,
            until: 20.0,
        });
        let mut r = rng(5);
        for (t, expect_alive) in [(5.0, true), (10.0, false), (19.9, false), (20.0, true)] {
            let mut g = full_group(3, 2);
            e.apply(t, &mut g, &mut r);
            assert_eq!(g.node_responded(1), expect_alive, "t = {t}");
            assert!(g.node_responded(0), "other nodes unaffected at t = {t}");
        }
    }

    #[test]
    fn empty_outage_set_means_total_blackout() {
        let mut e = RegimeEngine::new(4).with(RegimeKind::Outage {
            nodes: BTreeSet::new(),
            from: 0.0,
            until: f64::INFINITY,
        });
        let mut g = full_group(4, 3);
        e.apply(1.0, &mut g, &mut rng(6));
        assert_eq!(g.missing_count(), 12);
    }

    #[test]
    fn energy_depletion_kills_permanently() {
        // Battery covers exactly two rounds of 2 samples + 1 message at
        // unit prices: dead from round 3 on.
        let model = EnergyModel::new(1.0, 1.0, 0.0);
        let mut e = RegimeEngine::new(2).with(RegimeKind::EnergyDepletion {
            model,
            battery_j: 5.0,
        });
        let mut r = rng(7);
        let mut alive_rounds = 0;
        for i in 0..5 {
            let mut g = full_group(2, 2);
            e.apply(i as f64, &mut g, &mut r);
            if g.node_responded(0) {
                alive_rounds += 1;
            } else {
                // Once dead, stays dead.
                assert!(i >= 1, "died too early at round {i}");
            }
        }
        // Round 0 charges 3 J, round 1 reaches 6 J > 5 J ⟹ rounds 0 and 1
        // respond, 2..5 are dead.
        assert_eq!(alive_rounds, 2);
    }

    #[test]
    fn stuck_at_keeps_responding_with_frozen_value() {
        let mut e = RegimeEngine::new(2).with(RegimeKind::StuckAt {
            nodes: [NodeId(0)].into_iter().collect(),
            from: 5.0,
        });
        let mut r = rng(8);
        // Pre-onset round records the value.
        let mut g = full_group(2, 2);
        g.set(1, 0, Some(Rss::new(-42.0)));
        e.apply(0.0, &mut g, &mut r);
        assert_eq!(g.get(1, 0), Some(Rss::new(-42.0)), "pre-onset pass-through");
        // Post-onset: every instant reports the frozen value, even where
        // the raw matrix was silent.
        let mut g = GroupSampling::empty(2, 3);
        g.set(0, 1, Some(Rss::new(-60.0)));
        e.apply(6.0, &mut g, &mut r);
        for inst in 0..3 {
            assert_eq!(g.get(inst, 0), Some(Rss::new(-42.0)), "instant {inst}");
        }
        assert_eq!(g.get(0, 1), Some(Rss::new(-60.0)), "other node untouched");
    }

    #[test]
    fn stuck_node_without_history_stays_silent() {
        let mut e = RegimeEngine::new(1).with(RegimeKind::StuckAt {
            nodes: [NodeId(0)].into_iter().collect(),
            from: 0.0,
        });
        let mut g = GroupSampling::empty(1, 2);
        e.apply(1.0, &mut g, &mut rng(9));
        assert_eq!(g.missing_count(), 2);
    }

    #[test]
    fn drift_bias_grows_linearly() {
        let mut e = RegimeEngine::new(1).with(RegimeKind::Drift {
            nodes: BTreeSet::new(),
            from: 10.0,
            rate_db_per_s: 0.5,
        });
        let mut r = rng(10);
        let mut g = full_group(1, 1);
        e.apply(9.0, &mut g, &mut r);
        assert_eq!(g.get(0, 0), Some(Rss::new(-50.0)), "no bias before onset");
        let mut g = full_group(1, 1);
        e.apply(30.0, &mut g, &mut r);
        assert!((g.get(0, 0).unwrap().dbm() - (-50.0 + 10.0)).abs() < 1e-12);
    }

    #[test]
    fn regimes_compose_in_order() {
        // Outage first silences the node; stuck-at then has no history to
        // lie with ⟹ silent. Reversed order would freeze a value.
        let mut e = RegimeEngine::new(1)
            .with(RegimeKind::Outage {
                nodes: BTreeSet::new(),
                from: 0.0,
                until: f64::INFINITY,
            })
            .with(RegimeKind::StuckAt {
                nodes: BTreeSet::new(),
                from: 0.0,
            });
        let mut g = full_group(1, 2);
        e.apply(0.0, &mut g, &mut rng(11));
        assert_eq!(g.missing_count(), 2);
    }

    #[test]
    fn invalid_regimes_rejected() {
        assert!(RegimeEngine::new(2)
            .try_with(RegimeKind::Burst {
                p_enter: 1.5,
                p_exit: 0.5,
                loss_good: 0.0,
                loss_bad: 1.0
            })
            .is_err());
        assert!(RegimeEngine::new(2)
            .try_with(RegimeKind::Outage {
                nodes: BTreeSet::new(),
                from: 5.0,
                until: 1.0
            })
            .is_err());
        assert!(RegimeEngine::new(2)
            .try_with(RegimeKind::EnergyDepletion {
                model: EnergyModel::default(),
                battery_j: -1.0
            })
            .is_err());
        assert!(RegimeEngine::new(2)
            .try_with(RegimeKind::Drift {
                nodes: BTreeSet::new(),
                from: 0.0,
                rate_db_per_s: f64::NAN
            })
            .is_err());
        assert!(RegimeEngine::new(2)
            .try_with(RegimeKind::Static(FaultModel {
                node_failure_prob: 1.5,
                ..FaultModel::none()
            }))
            .is_err());
    }

    #[test]
    #[should_panic(expected = "node count mismatch")]
    fn mismatched_group_rejected() {
        let mut e = RegimeEngine::new(3);
        let mut g = full_group(2, 1);
        e.apply(0.0, &mut g, &mut rng(12));
    }

    #[test]
    fn churn_silences_staggered_death_windows() {
        // Nodes 0 and 2 churn: 0 dies at t = 3 for 4 s, 2 dies at t = 5.
        let mut e = RegimeEngine::new(3).with(RegimeKind::Churn {
            nodes: [NodeId(0), NodeId(2)].into_iter().collect(),
            from: 3.0,
            every: 2.0,
            dead_for: 4.0,
        });
        let mut r = rng(13);
        let expect = [
            (2.9, true, true),
            (3.0, false, true),
            (5.0, false, false),
            (7.0, true, false),
            (9.0, true, true),
        ];
        for (t, n0, n2) in expect {
            let mut g = full_group(3, 2);
            e.apply(t, &mut g, &mut r);
            assert_eq!(g.node_responded(0), n0, "node 0 at t = {t}");
            assert_eq!(g.node_responded(2), n2, "node 2 at t = {t}");
            assert!(g.node_responded(1), "unchurned node at t = {t}");
        }
    }

    #[test]
    fn churn_events_cover_windows_exactly_once() {
        let e = RegimeEngine::new(3).with(RegimeKind::Churn {
            nodes: [NodeId(0), NodeId(2)].into_iter().collect(),
            from: 3.0,
            every: 2.0,
            dead_for: 4.0,
        });
        // All events at once.
        let all = e.churn_events_between(None, 100.0);
        assert_eq!(
            all,
            vec![
                ChurnEvent {
                    t: 3.0,
                    node: 0,
                    death: true
                },
                ChurnEvent {
                    t: 5.0,
                    node: 2,
                    death: true
                },
                ChurnEvent {
                    t: 7.0,
                    node: 0,
                    death: false
                },
                ChurnEvent {
                    t: 9.0,
                    node: 2,
                    death: false
                },
            ]
        );
        // Half-open windows partition the schedule without overlap.
        let mut prev = None;
        let mut collected = Vec::new();
        for t in [0.0, 3.0, 4.0, 6.0, 9.0, 20.0] {
            collected.extend(e.churn_events_between(prev, t));
            prev = Some(t);
        }
        assert_eq!(collected, all);
        // Permanent deaths emit no revival.
        let forever = RegimeEngine::new(2).with(RegimeKind::Churn {
            nodes: BTreeSet::new(),
            from: 1.0,
            every: 1.0,
            dead_for: f64::INFINITY,
        });
        let events = forever.churn_events_between(None, 50.0);
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|e| e.death));
    }

    #[test]
    fn churn_draws_no_rng() {
        // Adding a churn regime must not shift any other regime's random
        // stream: compare a burst regime's output with and without churn
        // stacked ahead of it, on identical seeds.
        let burst = RegimeKind::Burst {
            p_enter: 0.3,
            p_exit: 0.2,
            loss_good: 0.1,
            loss_bad: 0.9,
        };
        let mut plain = RegimeEngine::new(4).with(burst.clone());
        let mut churned = RegimeEngine::new(4)
            .with(RegimeKind::Churn {
                nodes: [NodeId(3)].into_iter().collect(),
                from: 2.0,
                every: 1.0,
                dead_for: 3.0,
            })
            .with(burst);
        let mut ra = rng(14);
        let mut rb = rng(14);
        for i in 0..20 {
            let mut ga = full_group(4, 2);
            let mut gb = full_group(4, 2);
            plain.apply(i as f64, &mut ga, &mut ra);
            churned.apply(i as f64, &mut gb, &mut rb);
            // Columns 0..3 see identical burst decisions.
            for j in 0..3 {
                assert_eq!(
                    ga.column(j).collect::<Vec<_>>(),
                    gb.column(j).collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn invalid_churn_rejected() {
        for (from, every, dead_for) in [
            (f64::NAN, 1.0, 1.0),
            (0.0, 0.0, 1.0),
            (0.0, -1.0, 1.0),
            (0.0, f64::INFINITY, 1.0),
            (0.0, 1.0, 0.0),
            (0.0, 1.0, f64::NAN),
        ] {
            assert!(
                RegimeEngine::new(2)
                    .try_with(RegimeKind::Churn {
                        nodes: BTreeSet::new(),
                        from,
                        every,
                        dead_for,
                    })
                    .is_err(),
                "churn from={from} every={every} dead_for={dead_for} must be rejected"
            );
        }
    }
}
