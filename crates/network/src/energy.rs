//! Per-node energy accounting for the sampling and uplink workload.
//!
//! The paper argues FTTT achieves its accuracy "with limited system cost"
//! and that the sampling times `k` are the main dial (Section 5.1). This
//! module makes the cost side measurable: a simple energy model charging
//! each one-shot acquisition, each uplink message and idle time, with a
//! per-node ledger — enough to plot the accuracy-vs-energy frontier over
//! `k` (the `ablation_energy` experiment).

use crate::sampling::GroupSampling;

/// Energy prices, in joules, loosely calibrated to an IRIS-class mote
/// (≈8 mA active at 3 V, ≈17 mA radio TX).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EnergyModel {
    /// Energy per one-shot RSS acquisition.
    pub per_sample: f64,
    /// Energy per uplink message (one per responding node per grouping).
    pub per_message: f64,
    /// Idle/sleep power in watts, charged per second to every node.
    pub idle_power: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        // 3 V × 8 mA × 1 ms acquisition ≈ 24 µJ; a 36-byte 802.15.4 frame
        // at 250 kbps, 17 mA ≈ 59 µJ; 15 µW sleep.
        Self {
            per_sample: 24e-6,
            per_message: 59e-6,
            idle_power: 15e-6,
        }
    }
}

impl EnergyModel {
    /// Creates a model.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite prices.
    pub fn new(per_sample: f64, per_message: f64, idle_power: f64) -> Self {
        for (name, v) in [
            ("per_sample", per_sample),
            ("per_message", per_message),
            ("idle_power", idle_power),
        ] {
            assert!(
                v.is_finite() && v >= 0.0,
                "{name} must be non-negative, got {v}"
            );
        }
        Self {
            per_sample,
            per_message,
            idle_power,
        }
    }
}

/// Accumulated per-node energy, joules.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EnergyLedger {
    model: EnergyModel,
    consumed: Vec<f64>,
}

impl EnergyLedger {
    /// A fresh ledger for `nodes` sensors.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0`.
    pub fn new(model: EnergyModel, nodes: usize) -> Self {
        assert!(nodes > 0, "need at least one node");
        Self {
            model,
            consumed: vec![0.0; nodes],
        }
    }

    /// Charges one grouping sampling: every delivered reading costs a
    /// sample, every responding node one message.
    ///
    /// # Panics
    ///
    /// Panics if the sampling's node count differs from the ledger's.
    pub fn charge_grouping(&mut self, group: &GroupSampling) {
        assert_eq!(
            group.node_count(),
            self.consumed.len(),
            "node count mismatch"
        );
        for j in 0..group.node_count() {
            let samples = group.column(j).flatten().count();
            if samples > 0 {
                self.consumed[j] += samples as f64 * self.model.per_sample + self.model.per_message;
            }
        }
    }

    /// Charges `seconds` of idle time to every node.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is negative.
    pub fn charge_idle(&mut self, seconds: f64) {
        assert!(seconds >= 0.0, "idle time must be non-negative");
        for c in &mut self.consumed {
            *c += seconds * self.model.idle_power;
        }
    }

    /// Per-node totals, joules, in ID order.
    pub fn per_node(&self) -> &[f64] {
        &self.consumed
    }

    /// Network total, joules.
    pub fn total(&self) -> f64 {
        self.consumed.iter().sum()
    }

    /// The heaviest-loaded node's consumption (the network's lifetime
    /// bottleneck under a fixed battery).
    pub fn max_node(&self) -> f64 {
        self.consumed.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_signal::Rss;

    fn group_with(readings: &[(usize, usize)]) -> GroupSampling {
        // 3 nodes × 4 instants; `readings` lists (instant, node) cells set.
        let mut g = GroupSampling::empty(3, 4);
        for &(t, j) in readings {
            g.set(t, j, Some(Rss::new(-50.0)));
        }
        g
    }

    #[test]
    fn charging_counts_samples_and_messages() {
        let model = EnergyModel::new(2.0, 10.0, 0.0);
        let mut ledger = EnergyLedger::new(model, 3);
        // Node 0: 2 samples; node 1: silent; node 2: 1 sample.
        ledger.charge_grouping(&group_with(&[(0, 0), (1, 0), (3, 2)]));
        assert_eq!(ledger.per_node(), &[14.0, 0.0, 12.0]);
        assert_eq!(ledger.total(), 26.0);
        assert_eq!(ledger.max_node(), 14.0);
    }

    #[test]
    fn silent_nodes_pay_no_message() {
        let model = EnergyModel::new(1.0, 100.0, 0.0);
        let mut ledger = EnergyLedger::new(model, 3);
        ledger.charge_grouping(&GroupSampling::empty(3, 4));
        assert_eq!(ledger.total(), 0.0);
    }

    #[test]
    fn idle_charges_everyone() {
        let model = EnergyModel::new(0.0, 0.0, 2.0);
        let mut ledger = EnergyLedger::new(model, 4);
        ledger.charge_idle(3.0);
        assert_eq!(ledger.per_node(), &[6.0; 4]);
        assert_eq!(ledger.total(), 24.0);
    }

    #[test]
    fn default_prices_are_mote_scale() {
        let m = EnergyModel::default();
        // A 60 s run at 2 localizations/s, k = 5, all 10 nodes responding:
        // dominated by sampling+radio, total well under a joule.
        let mut ledger = EnergyLedger::new(m, 10);
        let mut g = GroupSampling::empty(10, 5);
        for t in 0..5 {
            for j in 0..10 {
                g.set(t, j, Some(Rss::new(-50.0)));
            }
        }
        for _ in 0..120 {
            ledger.charge_grouping(&g);
        }
        ledger.charge_idle(60.0);
        assert!(
            ledger.total() > 0.0 && ledger.total() < 1.0,
            "total {} J",
            ledger.total()
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_price_rejected() {
        let _ = EnergyModel::new(-1.0, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "node count mismatch")]
    fn mismatched_ledger_rejected() {
        let mut ledger = EnergyLedger::new(EnergyModel::default(), 2);
        ledger.charge_grouping(&GroupSampling::empty(3, 1));
    }
}
