//! Journal-driven replay: re-run a recorded campaign from its own header
//! and diff the live rounds against the recording, plus the
//! golden-checksum gate the `fault_campaign --check-determinism` mode
//! runs against `crates/bench/baselines/robustness_checksums.json`.
//!
//! A campaign journal is self-describing: the `fttt.campaign.header`
//! event carries the config, the kind (built-in or custom, with the
//! schedule text embedded) and the face-map digest; each
//! `fttt.campaign.trial` event maps a stable session id to its cell,
//! derived seed and replay digest; each `fttt.session.round` event
//! carries the full per-round monitor record. [`parse_recording`] lifts
//! any of the journal's serializations (JSONL, canonical JSONL, Chrome
//! trace) back into a [`RecordedCampaign`]; [`replay_and_diff`] re-runs
//! the campaign from the header alone and reports every field-level
//! divergence, ordered so "first divergent round" means first in
//! deterministic campaign order — the earliest point where the live
//! simulation left the recorded trajectory.

use std::collections::BTreeMap;

use crate::robustness::{
    campaign_cells, campaign_checksum, run_campaign_stats, CampaignConfig, CampaignKind,
};
use fttt::replay::{digest_hex, parse_digest_hex};
use wsn_telemetry::json::JsonValue;
use wsn_telemetry::{ArgValue, Journal, TraceKind, TraceLog};

/// One recorded `fttt.session.round` event, field-for-field.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedRound {
    /// Simulation time, seconds.
    pub t: f64,
    /// Status before the round's checks.
    pub status_before: String,
    /// Status after.
    pub status: String,
    /// Judged cause label.
    pub cause: String,
    /// Blackout hold?
    pub blackout: bool,
    /// Check verdicts.
    pub stranded: bool,
    /// See [`fttt::session::RoundTrace`].
    pub starved: bool,
    /// See [`fttt::session::RoundTrace`].
    pub teleported: bool,
    /// Estimate held rather than fresh?
    pub held: bool,
    /// Forced exhaustive re-acquisition?
    pub reacquired: bool,
    /// Missing fraction of the sampling vector.
    pub missing: f64,
    /// Zero fraction among known components.
    pub zeros: f64,
    /// Sampling times used this round.
    pub k: u64,
    /// Sampling times requested for the next round.
    pub k_after: u64,
    /// Estimate coordinates.
    pub x: f64,
    /// Estimate coordinates.
    pub y: f64,
    /// 1-based matched face, 0 = blackout hold.
    pub face: u64,
    /// Match similarity. `None` on blackout holds *and* for non-finite
    /// similarities (a perfect match scores +inf, which JSON cannot
    /// carry — it serializes as null).
    pub similarity: Option<f64>,
}

/// One recorded `fttt.campaign.trial` event.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedTrial {
    /// Cell index in campaign order.
    pub cell: u64,
    /// Trial index within the cell.
    pub trial: u64,
    /// The trial's derived RNG seed.
    pub seed: u64,
    /// Rounds the trial ran.
    pub rounds: u64,
    /// The trial's replay digest.
    pub digest: u64,
}

/// A campaign recording, reconstructed from its journal.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedCampaign {
    /// The recorded config.
    pub cfg: CampaignConfig,
    /// What was run (schedule text embedded for custom runs).
    pub kind: CampaignKind,
    /// The recorded face-map digest.
    pub map_digest: u64,
    /// Per-trial records keyed by stable session id.
    pub trials: BTreeMap<u64, RecordedTrial>,
    /// Per-round records keyed by `(session id, round index)`.
    pub rounds: BTreeMap<(u64, u64), RecordedRound>,
}

/// Looks a field up at the event root, then inside its `"args"` object —
/// covering the JSONL layout (args nested, round at root) and the Chrome
/// layout (everything inside `args`).
fn field<'a>(event: &'a JsonValue, key: &str) -> Option<&'a JsonValue> {
    event
        .get(key)
        .or_else(|| event.get("args").and_then(|a| a.get(key)))
}

fn req_u64(event: &JsonValue, key: &str, ctx: &str) -> Result<u64, String> {
    field(event, key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("{ctx}: missing integral {key:?}"))
}

fn req_f64(event: &JsonValue, key: &str, ctx: &str) -> Result<f64, String> {
    field(event, key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("{ctx}: missing numeric {key:?}"))
}

fn req_bool(event: &JsonValue, key: &str, ctx: &str) -> Result<bool, String> {
    field(event, key)
        .and_then(JsonValue::as_bool)
        .ok_or_else(|| format!("{ctx}: missing boolean {key:?}"))
}

fn req_str(event: &JsonValue, key: &str, ctx: &str) -> Result<String, String> {
    field(event, key)
        .and_then(JsonValue::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("{ctx}: missing string {key:?}"))
}

/// Full-range u64s (seeds, digests) travel as hex strings — JSON numbers
/// are f64 and would silently round them above 2^53.
fn req_hex(event: &JsonValue, key: &str, ctx: &str) -> Result<u64, String> {
    field(event, key)
        .and_then(JsonValue::as_str)
        .and_then(parse_digest_hex)
        .ok_or_else(|| format!("{ctx}: missing hex {key:?}"))
}

/// Splits a journal serialization into its event objects: a full JSON
/// document with a `traceEvents` array (Chrome form), or line-delimited
/// JSON where each line is one event (plain and canonical JSONL; the
/// meta line and blank lines are skipped, anything else malformed is an
/// error).
fn event_objects(text: &str) -> Result<Vec<JsonValue>, String> {
    if let Ok(doc) = JsonValue::parse(text) {
        if let Some(events) = doc.get("traceEvents").and_then(JsonValue::as_array) {
            return Ok(events.to_vec());
        }
        // A single-line JSONL journal parses as one object; fall through
        // to per-line handling below for uniform meta-line skipping.
    }
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let v = JsonValue::parse(line).map_err(|e| format!("journal line {}: {e}", i + 1))?;
        if v.get("kind").and_then(JsonValue::as_str) == Some("meta") {
            continue;
        }
        events.push(v);
    }
    Ok(events)
}

/// Parses a journal serialization into a [`RecordedCampaign`].
///
/// Fails loudly when the journal has no campaign header (nothing to
/// replay from), names an unknown kind, or a round/trial event is
/// missing fields.
pub fn parse_recording(text: &str) -> Result<RecordedCampaign, String> {
    let events = event_objects(text)?;
    let mut header: Option<(CampaignConfig, CampaignKind, u64)> = None;
    let mut trials = BTreeMap::new();
    let mut rounds = BTreeMap::new();
    for event in &events {
        match field(event, "name").and_then(JsonValue::as_str) {
            Some("fttt.campaign.header") => {
                if header.is_some() {
                    return Err("journal holds more than one campaign header; \
                                replay one campaign at a time"
                        .into());
                }
                let ctx = "campaign header";
                let cfg = CampaignConfig {
                    seed: req_hex(event, "seed", ctx)?,
                    trials: req_u64(event, "trials", ctx)? as usize,
                    duration: req_f64(event, "duration_s", ctx)?,
                    nodes: req_u64(event, "nodes", ctx)? as usize,
                };
                let kind = match req_str(event, "campaign_kind", ctx)?.as_str() {
                    "builtin" => CampaignKind::Builtin,
                    "custom" => CampaignKind::Custom {
                        label: req_str(event, "label", ctx)?,
                        schedule: req_str(event, "schedule", ctx)?,
                    },
                    "churn" => CampaignKind::Churn,
                    other => return Err(format!("{ctx}: unknown campaign kind {other:?}")),
                };
                let map_digest = req_hex(event, "map_digest", ctx)?;
                header = Some((cfg, kind, map_digest));
            }
            Some("fttt.campaign.trial") => {
                let ctx = "campaign trial event";
                let session = req_u64(event, "session", ctx)?;
                trials.insert(
                    session,
                    RecordedTrial {
                        cell: req_u64(event, "cell", ctx)?,
                        trial: req_u64(event, "trial", ctx)?,
                        seed: req_hex(event, "seed", ctx)?,
                        rounds: req_u64(event, "rounds", ctx)?,
                        digest: req_hex(event, "digest", ctx)?,
                    },
                );
            }
            Some("fttt.session.round") => {
                let ctx = "session round event";
                let session = req_u64(event, "session", ctx)?;
                let round = req_u64(event, "round", ctx)?;
                rounds.insert((session, round), parse_round(event, ctx)?);
            }
            _ => {}
        }
    }
    let (cfg, kind, map_digest) =
        header.ok_or("journal has no fttt.campaign.header event — nothing to replay from")?;
    Ok(RecordedCampaign {
        cfg,
        kind,
        map_digest,
        trials,
        rounds,
    })
}

fn parse_round(event: &JsonValue, ctx: &str) -> Result<RecordedRound, String> {
    Ok(RecordedRound {
        t: req_f64(event, "t", ctx)?,
        status_before: req_str(event, "status_before", ctx)?,
        status: req_str(event, "status", ctx)?,
        cause: req_str(event, "cause", ctx)?,
        blackout: req_bool(event, "blackout", ctx)?,
        stranded: req_bool(event, "stranded", ctx)?,
        starved: req_bool(event, "starved", ctx)?,
        teleported: req_bool(event, "teleported", ctx)?,
        held: req_bool(event, "held", ctx)?,
        reacquired: req_bool(event, "reacquired", ctx)?,
        missing: req_f64(event, "missing", ctx)?,
        zeros: req_f64(event, "zeros", ctx)?,
        k: req_u64(event, "k", ctx)?,
        k_after: req_u64(event, "k_after", ctx)?,
        x: req_f64(event, "x", ctx)?,
        y: req_f64(event, "y", ctx)?,
        face: req_u64(event, "face", ctx)?,
        similarity: field(event, "similarity").and_then(JsonValue::as_f64),
    })
}

/// One field-level disagreement between the recording and the live
/// re-run.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Stable session id the divergence is in.
    pub session: u64,
    /// Round index, `None` for trial- or campaign-level divergences.
    pub round: Option<u64>,
    /// Which field disagreed.
    pub field: String,
    /// The recorded value, rendered.
    pub recorded: String,
    /// The live value, rendered.
    pub live: String,
}

/// The outcome of a replay diff.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// Round events in the recording.
    pub recorded_rounds: usize,
    /// Round events the live re-run produced.
    pub live_rounds: usize,
    /// Every divergence, in deterministic campaign order — `divergences
    /// .first()` is *the* first divergent round.
    pub divergences: Vec<Divergence>,
    /// The live run's campaign checksum.
    pub checksum: u64,
}

impl ReplayReport {
    /// A faithful recording replays with zero divergences.
    pub fn is_faithful(&self) -> bool {
        self.divergences.is_empty()
    }
}

fn bits_eq(a: f64, b: f64) -> bool {
    a.to_bits() == b.to_bits()
}

/// Re-runs the recorded campaign from its header and diffs every round
/// and trial digest against the recording.
///
/// The live run executes under a private journal (any installed journal
/// is restored afterwards), single-process — the recording may have come
/// from any shard layout or thread count, which is exactly what the diff
/// is meant to be invariant to.
pub fn replay_and_diff(rec: &RecordedCampaign) -> Result<ReplayReport, String> {
    let saved = wsn_telemetry::uninstall_journal();
    // Big enough that a full campaign cannot drop round events — a lossy
    // capture would diff as spurious missing rounds.
    let journal = std::sync::Arc::new(Journal::with_capacity(1 << 20));
    wsn_telemetry::install_journal(std::sync::Arc::clone(&journal));
    let stats = run_campaign_stats(&rec.cfg, &rec.kind, 1, 0);
    let log = journal.snapshot();
    wsn_telemetry::uninstall_journal();
    if let Some(prev) = saved {
        wsn_telemetry::install_journal(prev);
    }
    if log.dropped > 0 {
        return Err(format!(
            "replay journal dropped {} events — raise the journal capacity",
            log.dropped
        ));
    }

    let cells = campaign_cells(&rec.kind);
    let checksum = campaign_checksum(&rec.cfg, &cells, stats.map_digest, &stats.stats);
    let (live_trials, live_rounds) = live_maps(&log)?;

    let mut divergences = Vec::new();
    if rec.map_digest != stats.map_digest {
        divergences.push(Divergence {
            session: 0,
            round: None,
            field: "map_digest".into(),
            recorded: digest_hex(rec.map_digest),
            live: digest_hex(stats.map_digest),
        });
    }
    // Order sessions by campaign position (cell, trial) so the first
    // reported divergence is the first in deterministic campaign order,
    // not in id order. Sessions only one side knows about sort last.
    let mut sessions: Vec<u64> = rec
        .trials
        .keys()
        .chain(live_trials.keys())
        .chain(rec.rounds.keys().map(|(s, _)| s))
        .chain(live_rounds.keys().map(|(s, _)| s))
        .copied()
        .collect();
    sessions.sort_unstable();
    sessions.dedup();
    sessions.sort_by_key(|s| {
        live_trials
            .get(s)
            .or_else(|| rec.trials.get(s))
            .map_or((u64::MAX, u64::MAX), |t| (t.cell, t.trial))
    });

    for session in sessions {
        diff_session(session, rec, &live_trials, &live_rounds, &mut divergences);
    }
    Ok(ReplayReport {
        recorded_rounds: rec.rounds.len(),
        live_rounds: live_rounds.len(),
        divergences,
        checksum,
    })
}

type RoundMap = BTreeMap<(u64, u64), RecordedRound>;

/// Lifts the live journal snapshot into the same keyed maps the recording
/// parses to — straight from the typed events, no JSON round-trip.
fn live_maps(log: &TraceLog) -> Result<(BTreeMap<u64, RecordedTrial>, RoundMap), String> {
    let mut trials = BTreeMap::new();
    let mut rounds = BTreeMap::new();
    for e in &log.events {
        let arg_u64 = |key: &str| {
            e.args.iter().find_map(|(k, v)| match v {
                ArgValue::U64(n) if *k == key => Some(*n),
                _ => None,
            })
        };
        let arg_f64 = |key: &str| {
            e.args.iter().find_map(|(k, v)| match v {
                ArgValue::F64(n) if *k == key => Some(*n),
                _ => None,
            })
        };
        let arg_bool = |key: &str| {
            e.args.iter().find_map(|(k, v)| match v {
                ArgValue::Bool(b) if *k == key => Some(*b),
                _ => None,
            })
        };
        let arg_str = |key: &str| {
            e.args.iter().find_map(|(k, v)| match v {
                ArgValue::Str(s) if *k == key => Some(s.clone()),
                _ => None,
            })
        };
        match e.name {
            "fttt.campaign.trial" => {
                let session = arg_u64("session").ok_or("live trial event lost its session id")?;
                trials.insert(
                    session,
                    RecordedTrial {
                        cell: arg_u64("cell").unwrap_or(u64::MAX),
                        trial: arg_u64("trial").unwrap_or(u64::MAX),
                        seed: arg_str("seed")
                            .as_deref()
                            .and_then(parse_digest_hex)
                            .unwrap_or(0),
                        rounds: arg_u64("rounds").unwrap_or(0),
                        digest: arg_str("digest")
                            .as_deref()
                            .and_then(parse_digest_hex)
                            .ok_or("live trial event lost its digest")?,
                    },
                );
            }
            "fttt.session.round" => {
                let TraceKind::Round { round } = e.kind else {
                    continue;
                };
                let session = arg_u64("session").ok_or("live round event lost its session id")?;
                let ctx = "live round event";
                let need_f = |k: &str| arg_f64(k).ok_or_else(|| format!("{ctx}: missing {k:?}"));
                let need_b = |k: &str| arg_bool(k).ok_or_else(|| format!("{ctx}: missing {k:?}"));
                let need_u = |k: &str| arg_u64(k).ok_or_else(|| format!("{ctx}: missing {k:?}"));
                let need_s = |k: &str| arg_str(k).ok_or_else(|| format!("{ctx}: missing {k:?}"));
                rounds.insert(
                    (session, round),
                    RecordedRound {
                        t: need_f("t")?,
                        status_before: need_s("status_before")?,
                        status: need_s("status")?,
                        cause: need_s("cause")?,
                        blackout: need_b("blackout")?,
                        stranded: need_b("stranded")?,
                        starved: need_b("starved")?,
                        teleported: need_b("teleported")?,
                        held: need_b("held")?,
                        reacquired: need_b("reacquired")?,
                        missing: need_f("missing")?,
                        zeros: need_f("zeros")?,
                        k: need_u("k")?,
                        k_after: need_u("k_after")?,
                        x: need_f("x")?,
                        y: need_f("y")?,
                        face: need_u("face")?,
                        // Non-finite similarities (a perfect match is
                        // +inf) serialize as JSON null, so the recording
                        // side reads them back as None — normalize the
                        // live side identically or faithful replays
                        // would self-report divergence.
                        similarity: arg_f64("similarity").filter(|v| v.is_finite()),
                    },
                );
            }
            _ => {}
        }
    }
    Ok((trials, rounds))
}

fn diff_session(
    session: u64,
    rec: &RecordedCampaign,
    live_trials: &BTreeMap<u64, RecordedTrial>,
    live_rounds: &RoundMap,
    divergences: &mut Vec<Divergence>,
) {
    let push = |divergences: &mut Vec<Divergence>,
                round: Option<u64>,
                field: &str,
                recorded: String,
                live: String| {
        divergences.push(Divergence {
            session,
            round,
            field: field.into(),
            recorded,
            live,
        });
    };
    // Round-by-round, in index order; the first field mismatch of a round
    // is reported and the rest of that round skipped (one cause per
    // round keeps the report readable — downstream fields of the same
    // round almost always disagree too).
    let recorded: Vec<(&(u64, u64), &RecordedRound)> = rec
        .rounds
        .range((session, 0)..=(session, u64::MAX))
        .collect();
    let max_round = recorded
        .iter()
        .map(|((_, r), _)| *r + 1)
        .max()
        .unwrap_or(0)
        .max(
            live_rounds
                .range((session, 0)..=(session, u64::MAX))
                .map(|((_, r), _)| *r + 1)
                .max()
                .unwrap_or(0),
        );
    for round in 0..max_round {
        let key = (session, round);
        match (rec.rounds.get(&key), live_rounds.get(&key)) {
            (Some(a), Some(b)) => {
                if let Some((field, rec_v, live_v)) = first_field_diff(a, b) {
                    push(divergences, Some(round), field, rec_v, live_v);
                }
            }
            (Some(_), None) => push(
                divergences,
                Some(round),
                "presence",
                "recorded".into(),
                "absent from live run".into(),
            ),
            (None, Some(_)) => push(
                divergences,
                Some(round),
                "presence",
                "absent from recording".into(),
                "live run produced it".into(),
            ),
            (None, None) => {}
        }
    }
    // Trial digests: the strongest per-trial check (covers regime/world
    // state the round events do not carry).
    match (rec.trials.get(&session), live_trials.get(&session)) {
        (Some(a), Some(b)) if a.digest != b.digest => push(
            divergences,
            None,
            "trial digest",
            digest_hex(a.digest),
            digest_hex(b.digest),
        ),
        (Some(_), None) => push(
            divergences,
            None,
            "trial",
            "recorded".into(),
            "absent from live run".into(),
        ),
        (None, Some(_)) => push(
            divergences,
            None,
            "trial",
            "absent from recording".into(),
            "live run produced it".into(),
        ),
        _ => {}
    }
}

/// The first disagreeing field of a round, in the digest's canonical
/// field order. Floats compare by bit pattern — the journal's exact
/// shortest-round-trip formatting makes that meaningful.
fn first_field_diff(
    a: &RecordedRound,
    b: &RecordedRound,
) -> Option<(&'static str, String, String)> {
    macro_rules! check {
        ($field:ident, $eq:expr, $fmt:expr) => {
            if !$eq(&a.$field, &b.$field) {
                return Some((stringify!($field), $fmt(&a.$field), $fmt(&b.$field)));
            }
        };
    }
    let feq = |x: &f64, y: &f64| bits_eq(*x, *y);
    let ffmt = |x: &f64| format!("{x}");
    let seq = |x: &String, y: &String| x == y;
    let sfmt = |x: &String| x.clone();
    let beq = |x: &bool, y: &bool| x == y;
    let bfmt = |x: &bool| x.to_string();
    let ueq = |x: &u64, y: &u64| x == y;
    let ufmt = |x: &u64| x.to_string();
    check!(t, feq, ffmt);
    check!(status_before, seq, sfmt);
    check!(status, seq, sfmt);
    check!(cause, seq, sfmt);
    check!(face, ueq, ufmt);
    check!(x, feq, ffmt);
    check!(y, feq, ffmt);
    check!(blackout, beq, bfmt);
    check!(stranded, beq, bfmt);
    check!(starved, beq, bfmt);
    check!(teleported, beq, bfmt);
    check!(held, beq, bfmt);
    check!(reacquired, beq, bfmt);
    check!(missing, feq, ffmt);
    check!(zeros, feq, ffmt);
    check!(k, ueq, ufmt);
    check!(k_after, ueq, ufmt);
    if a.similarity.map(f64::to_bits) != b.similarity.map(f64::to_bits) {
        let fmt = |s: &Option<f64>| s.map_or("none".to_string(), |v| format!("{v}"));
        return Some(("similarity", fmt(&a.similarity), fmt(&b.similarity)));
    }
    None
}

/// The baseline key a `(config, campaign kind)` pair maps to in the
/// golden-checksum file. `campaign` is a
/// [`crate::robustness::campaign_kind_label`].
pub fn checksum_key(cfg: &CampaignConfig, campaign: &str) -> String {
    format!(
        "campaign={},seed={},trials={},duration={},nodes={}",
        campaign, cfg.seed, cfg.trials, cfg.duration, cfg.nodes
    )
}

/// Renders the golden-checksum baseline document. Each entry is keyed by
/// `(campaign kind label, config)`.
pub fn render_checksum_baseline(entries: &[(CampaignConfig, &str, u64)]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"fault_campaign_checksums\",\n");
    out.push_str(
        "  \"note\": \"golden campaign checksums; every fault_campaign run prints its \
         checksum — update these only on an intentional simulation change\",\n",
    );
    out.push_str("  \"entries\": [\n");
    for (i, (cfg, campaign, sum)) in entries.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"campaign\": \"{}\", \"seed\": {}, \"trials\": {}, \"duration_s\": {}, \
             \"nodes\": {}, \"checksum\": \"{}\" }}{}\n",
            campaign,
            cfg.seed,
            cfg.trials,
            wsn_telemetry::json::format_f64(cfg.duration),
            cfg.nodes,
            digest_hex(*sum),
            if i + 1 == entries.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Checks a freshly computed campaign checksum against the committed
/// baseline document. `Ok(())` means the run matches its golden value;
/// `Err` names the drift or the missing entry. Entries without a
/// `"campaign"` field date from before the churn family and mean
/// `"builtin"`.
pub fn check_checksum(
    baseline_text: &str,
    cfg: &CampaignConfig,
    campaign: &str,
    checksum: u64,
) -> Result<(), String> {
    let doc = JsonValue::parse(baseline_text).map_err(|e| format!("checksum baseline: {e}"))?;
    if doc.get("bench").and_then(JsonValue::as_str) != Some("fault_campaign_checksums") {
        return Err("checksum baseline: not a fault_campaign_checksums document".into());
    }
    let entries = doc
        .get("entries")
        .and_then(JsonValue::as_array)
        .ok_or("checksum baseline: missing \"entries\" array")?;
    for (i, e) in entries.iter().enumerate() {
        let ctx = format!("checksum baseline entry {i}");
        let entry_cfg = CampaignConfig {
            seed: req_u64(e, "seed", &ctx)?,
            trials: req_u64(e, "trials", &ctx)? as usize,
            duration: req_f64(e, "duration_s", &ctx)?,
            nodes: req_u64(e, "nodes", &ctx)? as usize,
        };
        let entry_campaign = e
            .get("campaign")
            .and_then(JsonValue::as_str)
            .unwrap_or("builtin");
        if entry_cfg == *cfg && entry_campaign == campaign {
            let golden = e
                .get("checksum")
                .and_then(JsonValue::as_str)
                .and_then(parse_digest_hex)
                .ok_or_else(|| format!("{ctx}: missing hex \"checksum\""))?;
            return if golden == checksum {
                Ok(())
            } else {
                Err(format!(
                    "campaign checksum drift for {}: committed {} vs computed {} — \
                     the simulation no longer reproduces its golden trajectory",
                    checksum_key(cfg, campaign),
                    digest_hex(golden),
                    digest_hex(checksum)
                ))
            };
        }
    }
    Err(format!(
        "checksum baseline has no entry for {} — run fault_campaign with this config \
         (it prints the checksum) and commit it",
        checksum_key(cfg, campaign)
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_baseline_round_trips_and_gates() {
        let fast = CampaignConfig::fast(42);
        let full = CampaignConfig::full(42);
        let text = render_checksum_baseline(&[
            (fast, "builtin", 0xabc),
            (full, "builtin", 0xdef),
            (fast, "churn", 0x123),
        ]);
        assert!(check_checksum(&text, &fast, "builtin", 0xabc).is_ok());
        assert!(check_checksum(&text, &full, "builtin", 0xdef).is_ok());
        // The same config under a different campaign kind is a different
        // golden entry.
        assert!(check_checksum(&text, &fast, "churn", 0x123).is_ok());
        assert!(check_checksum(&text, &fast, "churn", 0xabc).is_err());

        let drift = check_checksum(&text, &fast, "builtin", 0xabd).unwrap_err();
        assert!(drift.contains("drift"), "{drift}");
        assert!(drift.contains("0x0000000000000abc"), "{drift}");

        let missing =
            check_checksum(&text, &CampaignConfig::fast(7), "builtin", 0xabc).unwrap_err();
        assert!(missing.contains("no entry"), "{missing}");
        assert!(missing.contains("seed=7"), "{missing}");

        // A pre-churn entry without a "campaign" field means builtin.
        let legacy = r#"{ "bench": "fault_campaign_checksums", "entries": [
            { "seed": 42, "trials": 3, "duration_s": 20, "nodes": 8, "checksum": "0x0000000000000abc" }
        ] }"#;
        assert!(check_checksum(legacy, &fast, "builtin", 0xabc).is_ok());
        assert!(check_checksum(legacy, &fast, "churn", 0xabc).is_err());
    }

    #[test]
    fn recording_parse_rejects_headerless_and_malformed_journals() {
        let err = parse_recording("").unwrap_err();
        assert!(err.contains("no fttt.campaign.header"), "{err}");

        let err = parse_recording("{not json at all").unwrap_err();
        assert!(err.contains("journal line 1"), "{err}");

        // A header missing its seed is named, not silently defaulted.
        let line = r#"{"name":"fttt.campaign.header","kind":"instant","args":{"campaign_kind":"builtin"}}"#;
        let err = parse_recording(line).unwrap_err();
        assert!(err.contains("\"seed\""), "{err}");
    }

    #[test]
    fn first_field_diff_reports_in_canonical_order() {
        let base = RecordedRound {
            t: 1.0,
            status_before: "Tracking".into(),
            status: "Tracking".into(),
            cause: "healthy".into(),
            blackout: false,
            stranded: false,
            starved: false,
            teleported: false,
            held: false,
            reacquired: false,
            missing: 0.0,
            zeros: 0.0,
            k: 5,
            k_after: 5,
            x: 10.0,
            y: 20.0,
            face: 3,
            similarity: Some(0.9),
        };
        assert_eq!(first_field_diff(&base, &base), None);
        // status diverges before x in the canonical order even when both
        // disagree.
        let mut b = base.clone();
        b.status = "Lost".into();
        b.x = 11.0;
        let (field, rec, live) = first_field_diff(&base, &b).unwrap();
        assert_eq!(field, "status");
        assert_eq!((rec.as_str(), live.as_str()), ("Tracking", "Lost"));
        // similarity None vs Some is a divergence, not a wildcard.
        let mut b = base.clone();
        b.similarity = None;
        assert_eq!(first_field_diff(&base, &b).unwrap().0, "similarity");
    }
}
