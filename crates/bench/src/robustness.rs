//! The fault campaign: graceful-degradation envelopes for self-healing
//! tracking sessions under composable fault regimes.
//!
//! Each campaign cell runs seeded Monte-Carlo trials of a
//! [`TrackingSession`] (basic or extended FTTT under the heuristic matcher
//! with the session's recovery ladder) against a fault regime described in
//! the `wsn_network::spec` schedule language — the same parser users feed
//! config files through, so the campaign doubles as an end-to-end test of
//! that path. Two families of cells:
//!
//! * a **node-failure sweep** over rates {0, 0.1, 0.3, 0.5}, the paper's
//!   Section-7 fault axis, which must show *graceful* degradation: error
//!   grows with the rate but stays inside an envelope anchored at the
//!   fault-free mean and capped below a blind field-centre guess;
//! * **showcase regimes** exercising each [`wsn_network::RegimeKind`]:
//!   bursty loss, a total blackout window (which must drive the session
//!   Lost *and back*), energy-coupled death, stuck-at and drifting
//!   sensors.
//!
//! [`check_envelopes`] turns those expectations into machine-checked
//! assertions; the `fault_campaign` binary and the CLI `campaign`
//! subcommand print the table, write `BENCH_robustness.json` and fail on
//! any violation.

use fttt::config::PaperParams;
use fttt::session::{SessionOptions, SessionRun, TrackStatus, TrackingSession};
use fttt::tracker::{Tracker, TrackerOptions};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wsn_network::{GroupSampler, Schedule};
use wsn_parallel::{par_map, seed_for};

/// Campaign workload parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignConfig {
    /// Master seed; every trial derives deterministically from it.
    pub seed: u64,
    /// Monte-Carlo trials per campaign cell.
    pub trials: usize,
    /// Trace duration per trial, seconds.
    pub duration: f64,
    /// Deployed node count.
    pub nodes: usize,
}

impl CampaignConfig {
    /// The full campaign workload.
    pub fn full(seed: u64) -> Self {
        Self {
            seed,
            trials: 6,
            duration: 40.0,
            nodes: 10,
        }
    }

    /// A reduced smoke workload (seeded, a few seconds of wall clock) for
    /// tier-1 CI.
    pub fn fast(seed: u64) -> Self {
        Self {
            seed,
            trials: 3,
            duration: 20.0,
            nodes: 8,
        }
    }
}

/// The node-failure rates of the sweep family (the paper's fault axis).
pub const SWEEP_RATES: [f64; 4] = [0.0, 0.1, 0.3, 0.5];

/// Regime label of the sweep family rows.
pub const SWEEP_REGIME: &str = "node-failure";

/// Regime label of the blackout showcase (the Lost→Tracking regression
/// anchor).
pub const BLACKOUT_REGIME: &str = "blackout";

/// The showcase regimes: `(label, schedule text)`. Windows are placed
/// inside even the fast config's 20 s trace.
pub fn showcase_regimes() -> Vec<(&'static str, &'static str)> {
    vec![
        ("burst", "burst enter=0.15 exit=0.35 loss_bad=0.95"),
        (BLACKOUT_REGIME, "outage from=8 until=14"),
        ("energy", "energy battery=0.003"),
        ("stuck", "stuck nodes=0,1 from=5"),
        ("drift", "drift nodes=2 from=5 rate=0.5"),
    ]
}

/// One campaign cell: a (regime, method) pair aggregated over trials.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRow {
    /// Regime label (`node-failure` for the sweep family).
    pub regime: String,
    /// Method label.
    pub method: &'static str,
    /// Node-failure rate for sweep rows, `None` for showcase rows.
    pub fault_rate: Option<f64>,
    /// Mean over trials of the per-trial mean error, metres.
    pub mean_error: f64,
    /// Largest per-trial mean error (worst world).
    pub worst_error: f64,
    /// Mean fraction of rounds spent [`TrackStatus::Lost`].
    pub lost_fraction: f64,
    /// Mean fraction of rounds spent [`TrackStatus::Degraded`].
    pub degraded_fraction: f64,
    /// Trials that entered [`TrackStatus::Lost`] at least once.
    pub trials_lost: usize,
    /// Among `trials_lost`, the fraction that returned to
    /// [`TrackStatus::Tracking`] afterwards (1.0 when none were lost).
    pub recovery_rate: f64,
    /// Mean sampling times `k` per round (adaptive escalation cost).
    pub mean_samples: f64,
}

/// The two session-wrapped trackers under test.
const METHODS: [(&str, bool); 2] = [("FTTT-basic", false), ("FTTT-ext", true)];

fn campaign_params(cfg: &CampaignConfig) -> PaperParams {
    PaperParams::default()
        .with_nodes(cfg.nodes)
        .with_cell_size(2.0)
}

/// Runs one seeded session trial against a parsed schedule.
fn run_session_trial(
    params: &PaperParams,
    extended: bool,
    schedule: &Schedule,
    duration: f64,
    seed: u64,
) -> SessionRun {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Grid deployment: the campaign compares fault regimes, so the
    // geometry is held fixed and only noise/faults vary per trial.
    let field = params.grid_field();
    let trace = params.random_trace(duration, &mut rng);
    let map = params.face_map(&field);
    let options = if extended {
        TrackerOptions {
            extended: true,
            ..TrackerOptions::heuristic()
        }
    } else {
        TrackerOptions::heuristic()
    };
    let session_options = SessionOptions::new(params.samples_k).with_max_speed(params.max_speed);
    let mut session = TrackingSession::new(Tracker::new(map, options), session_options);
    let mut engine = schedule.engine(field.len());
    let base = params.sampler();
    session.run(&trace, &mut rng, |k, pos, t, r| {
        let sampler = GroupSampler {
            samples: k,
            ..base.clone()
        };
        let mut g = sampler.sample(&field, pos, r);
        engine.apply(t, &mut g, r);
        g
    })
}

fn aggregate(
    regime: &str,
    method: &'static str,
    fault_rate: Option<f64>,
    runs: &[SessionRun],
) -> CampaignRow {
    let n = runs.len() as f64;
    let means: Vec<f64> = runs.iter().map(|r| r.error_stats().mean).collect();
    let frac = |status: TrackStatus| {
        runs.iter()
            .map(|r| r.rounds_in(status) as f64 / r.rounds.len() as f64)
            .sum::<f64>()
            / n
    };
    let lost: Vec<&SessionRun> = runs
        .iter()
        .filter(|r| r.rounds_in(TrackStatus::Lost) > 0)
        .collect();
    let recovery_rate = if lost.is_empty() {
        1.0
    } else {
        lost.iter().filter(|r| r.recovered_from_lost()).count() as f64 / lost.len() as f64
    };
    CampaignRow {
        regime: regime.to_string(),
        method,
        fault_rate,
        mean_error: means.iter().sum::<f64>() / n,
        worst_error: means.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b)),
        lost_fraction: frac(TrackStatus::Lost),
        degraded_fraction: frac(TrackStatus::Degraded),
        trials_lost: lost.len(),
        recovery_rate,
        mean_samples: runs
            .iter()
            .map(|r| r.total_samples() as f64 / r.rounds.len() as f64)
            .sum::<f64>()
            / n,
    }
}

/// Runs one campaign cell: `trials` seeded trials of `(schedule, method)`.
fn run_cell(
    cfg: &CampaignConfig,
    params: &PaperParams,
    regime: &str,
    method: (&'static str, bool),
    fault_rate: Option<f64>,
    schedule: &Schedule,
) -> CampaignRow {
    let idx: Vec<u64> = (0..cfg.trials as u64).collect();
    let runs: Vec<SessionRun> = par_map(&idx, |_, &i| {
        run_session_trial(
            params,
            method.1,
            schedule,
            cfg.duration,
            seed_for(cfg.seed, i),
        )
    });
    aggregate(regime, method.0, fault_rate, &runs)
}

/// Runs the whole campaign: the node-failure sweep then the showcase
/// regimes, for both methods, in deterministic row order.
///
/// # Panics
///
/// Panics if `cfg.trials == 0` or a built-in schedule fails to parse
/// (which would be a bug in this module).
pub fn run_campaign(cfg: &CampaignConfig) -> Vec<CampaignRow> {
    assert!(cfg.trials > 0, "need at least one trial");
    let params = campaign_params(cfg);
    let mut rows = Vec::new();
    for method in METHODS {
        for rate in SWEEP_RATES {
            let schedule = Schedule::parse(&format!("static node_failure={rate}"))
                .expect("sweep schedule is valid");
            rows.push(run_cell(
                cfg,
                &params,
                SWEEP_REGIME,
                method,
                Some(rate),
                &schedule,
            ));
        }
    }
    for (label, text) in showcase_regimes() {
        let schedule = Schedule::parse(text).expect("showcase schedule is valid");
        for method in METHODS {
            rows.push(run_cell(cfg, &params, label, method, None, &schedule));
        }
    }
    rows
}

/// Runs both session-wrapped methods against one user-provided schedule
/// (the CLI `campaign --schedule` path). Row order follows [`METHODS`].
///
/// # Panics
///
/// Panics if `cfg.trials == 0`.
pub fn run_custom_schedule(
    cfg: &CampaignConfig,
    label: &str,
    schedule: &Schedule,
) -> Vec<CampaignRow> {
    assert!(cfg.trials > 0, "need at least one trial");
    let params = campaign_params(cfg);
    METHODS
        .iter()
        .map(|&method| run_cell(cfg, &params, label, method, None, schedule))
        .collect()
}

/// Checks the graceful-degradation envelopes; returns one message per
/// violation (empty = campaign passes).
///
/// * every cell's error is finite and positive;
/// * no cell degrades past a blind field-centre guess
///   (`0.55 × field_side`);
/// * per method, sweep means stay inside the envelope anchored at the
///   fault-free mean: `mean(rate) ≤ 3 × mean(0) + 12 m`;
/// * the blackout showcase actually drives sessions Lost, and a majority
///   of those sessions recover to Tracking.
pub fn check_envelopes(rows: &[CampaignRow], field_side: f64) -> Vec<String> {
    let mut violations = Vec::new();
    let blind_guess = 0.55 * field_side;
    for r in rows {
        if !r.mean_error.is_finite() || r.mean_error <= 0.0 {
            violations.push(format!(
                "{}/{}: mean error {} is not finite-positive",
                r.regime, r.method, r.mean_error
            ));
        } else if r.mean_error > blind_guess {
            violations.push(format!(
                "{}/{}: mean error {:.1} m exceeds the blind-guess scale {:.1} m",
                r.regime, r.method, r.mean_error, blind_guess
            ));
        }
    }
    for (label, _) in METHODS {
        let sweep: Vec<&CampaignRow> = rows
            .iter()
            .filter(|r| r.regime == SWEEP_REGIME && r.method == label)
            .collect();
        let Some(baseline) = sweep.iter().find(|r| r.fault_rate == Some(0.0)) else {
            violations.push(format!("{label}: sweep has no fault-free baseline row"));
            continue;
        };
        for r in &sweep {
            let bound = 3.0 * baseline.mean_error + 12.0;
            if r.mean_error > bound {
                violations.push(format!(
                    "{label}: rate {:?} mean {:.1} m breaks the envelope {:.1} m \
                     (3 × fault-free {:.1} m + 12 m)",
                    r.fault_rate, r.mean_error, bound, baseline.mean_error
                ));
            }
        }
    }
    for r in rows.iter().filter(|r| r.regime == BLACKOUT_REGIME) {
        if r.trials_lost == 0 {
            violations.push(format!(
                "{}/{}: no trial entered Lost during a total blackout",
                r.regime, r.method
            ));
        } else if r.recovery_rate < 0.5 {
            violations.push(format!(
                "{}/{}: only {:.0}% of lost sessions recovered after the blackout",
                r.regime,
                r.method,
                100.0 * r.recovery_rate
            ));
        }
    }
    violations
}

/// The field side the campaign runs on (for envelope scaling).
pub fn campaign_field_side(cfg: &CampaignConfig) -> f64 {
    campaign_params(cfg).field_side
}

/// Hand-formatted JSON artifact (the vendored `serde_json` is a
/// compile-only stub). When a telemetry snapshot is supplied it is
/// embedded under a `"metrics"` key so `BENCH_robustness.json` carries
/// the campaign's instrumentation counters alongside the envelopes.
pub fn render_json(
    rows: &[CampaignRow],
    cfg: &CampaignConfig,
    violations: &[String],
    metrics: Option<&wsn_telemetry::Snapshot>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"fault_campaign\",\n");
    out.push_str("  \"config\": {\n");
    out.push_str(&format!("    \"seed\": {},\n", cfg.seed));
    out.push_str(&format!("    \"trials\": {},\n", cfg.trials));
    out.push_str(&format!("    \"duration_s\": {},\n", cfg.duration));
    out.push_str(&format!("    \"nodes\": {},\n", cfg.nodes));
    out.push_str(&format!(
        "    \"field_side_m\": {},\n",
        campaign_field_side(cfg)
    ));
    out.push_str(&format!("    \"sweep_rates\": {:?},\n", SWEEP_RATES));
    out.push_str(
        "    \"envelope\": \"mean(rate) <= 3*mean(0) + 12 m; all cells <= 0.55*field_side; \
         blackout must reach Lost and majority-recover\"\n",
    );
    out.push_str("  },\n");
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"regime\": \"{}\",\n", r.regime));
        out.push_str(&format!("      \"method\": \"{}\",\n", r.method));
        match r.fault_rate {
            Some(rate) => out.push_str(&format!("      \"fault_rate\": {rate},\n")),
            None => out.push_str("      \"fault_rate\": null,\n"),
        }
        out.push_str(&format!("      \"mean_error_m\": {:.3},\n", r.mean_error));
        out.push_str(&format!("      \"worst_error_m\": {:.3},\n", r.worst_error));
        out.push_str(&format!(
            "      \"lost_fraction\": {:.4},\n",
            r.lost_fraction
        ));
        out.push_str(&format!(
            "      \"degraded_fraction\": {:.4},\n",
            r.degraded_fraction
        ));
        out.push_str(&format!("      \"trials_lost\": {},\n", r.trials_lost));
        out.push_str(&format!(
            "      \"recovery_rate\": {:.3},\n",
            r.recovery_rate
        ));
        out.push_str(&format!("      \"mean_samples\": {:.2}\n", r.mean_samples));
        out.push_str(if i + 1 == rows.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"violations\": {},\n", violations.len()));
    if let Some(snap) = metrics {
        out.push_str(&format!(
            "  \"metrics\": {},\n",
            snap.to_json_indented("  ")
        ));
    }
    out.push_str(&format!("  \"pass\": {}\n", violations.is_empty()));
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn showcase_schedules_all_parse() {
        for (label, text) in showcase_regimes() {
            assert!(Schedule::parse(text).is_ok(), "{label} schedule must parse");
        }
    }

    #[test]
    fn single_trial_cell_is_deterministic() {
        let cfg = CampaignConfig {
            seed: 9,
            trials: 1,
            duration: 5.0,
            nodes: 8,
        };
        let params = campaign_params(&cfg);
        let schedule = Schedule::parse("static node_failure=0.3").unwrap();
        let a = run_session_trial(&params, false, &schedule, cfg.duration, 123);
        let b = run_session_trial(&params, false, &schedule, cfg.duration, 123);
        assert_eq!(a, b);
    }

    #[test]
    fn envelope_flags_blowup_and_missing_baseline() {
        let row = |regime: &str, rate: Option<f64>, mean: f64| CampaignRow {
            regime: regime.to_string(),
            method: "FTTT-basic",
            fault_rate: rate,
            mean_error: mean,
            worst_error: mean,
            lost_fraction: 0.0,
            degraded_fraction: 0.0,
            trials_lost: 0,
            recovery_rate: 1.0,
            mean_samples: 5.0,
        };
        // A 0-rate baseline of 5 m and a 0.5-rate mean of 40 m breaks
        // 3·5 + 12 = 27 m.
        let rows = vec![
            row(SWEEP_REGIME, Some(0.0), 5.0),
            row(SWEEP_REGIME, Some(0.5), 40.0),
        ];
        let v = check_envelopes(&rows, 100.0);
        assert_eq!(v.len(), 2, "envelope + missing FTTT-ext baseline: {v:?}");
        // A blackout row that never reached Lost is a violation too.
        let rows = vec![row(BLACKOUT_REGIME, None, 10.0)];
        let v = check_envelopes(&rows, 100.0);
        assert!(v.iter().any(|m| m.contains("entered Lost")), "{v:?}");
    }

    #[test]
    fn json_is_well_formed_enough() {
        let cfg = CampaignConfig::fast(1);
        let rows = vec![CampaignRow {
            regime: "burst".into(),
            method: "FTTT-basic",
            fault_rate: None,
            mean_error: 9.5,
            worst_error: 12.0,
            lost_fraction: 0.1,
            degraded_fraction: 0.2,
            trials_lost: 1,
            recovery_rate: 1.0,
            mean_samples: 6.0,
        }];
        let json = render_json(&rows, &cfg, &[], None);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"fault_rate\": null"));
        assert!(json.contains("\"pass\": true"));
        assert!(!json.contains("\"metrics\""));

        let registry = wsn_telemetry::Registry::new();
        registry.counter("wsn.regime.activations").add(7);
        let snap = registry.snapshot();
        let json = render_json(&rows, &cfg, &[], Some(&snap));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"metrics\""));
        assert!(json.contains("\"wsn.regime.activations\": 7"));
    }
}
