//! The fault campaign: graceful-degradation envelopes for self-healing
//! tracking sessions under composable fault regimes.
//!
//! Each campaign cell runs seeded Monte-Carlo trials of a
//! [`TrackingSession`] (basic or extended FTTT under the heuristic matcher
//! with the session's recovery ladder) against a fault regime described in
//! the `wsn_network::spec` schedule language — the same parser users feed
//! config files through, so the campaign doubles as an end-to-end test of
//! that path. Two families of cells:
//!
//! * a **node-failure sweep** over rates {0, 0.1, 0.3, 0.5}, the paper's
//!   Section-7 fault axis, which must show *graceful* degradation: error
//!   grows with the rate but stays inside an envelope anchored at the
//!   fault-free mean and capped below a blind field-centre guess;
//! * **showcase regimes** exercising each [`wsn_network::RegimeKind`]:
//!   bursty loss, a total blackout window (which must drive the session
//!   Lost *and back*), energy-coupled death, stuck-at and drifting
//!   sensors;
//! * a **churn family** ([`CampaignKind::Churn`]): a staggered death/birth
//!   storm run under three map policies — `churn-stale` (the map is never
//!   repaired, the control a fault-oblivious deployment would be),
//!   `churn-incremental` (live incremental face-map repair) and
//!   `churn-rebuild` (full rebuild per event, the reference the
//!   incremental path must digest-match). Every repair folds the
//!   post-repair map epoch and face-map digest into the trial's world
//!   digest, so churned campaigns stay bit-replayable and shard-identical
//!   exactly like static ones; [`check_churn_digests`] asserts the
//!   incremental and rebuild policies produced identical per-trial
//!   digests.
//!
//! [`check_envelopes`] turns those expectations into machine-checked
//! assertions; the `fault_campaign` binary and the CLI `campaign`
//! subcommand print the table, write `BENCH_robustness.json` and fail on
//! any violation.
//!
//! # Determinism
//!
//! The campaign is a pure function of `(master seed, schedule, config)`:
//! trial `i` of every cell is seeded with `seed_for(cfg.seed, i)`, each
//! trial folds its full per-round state (session rounds, regime state,
//! live-node sets — see [`fttt::replay`]) into a [`TrialStat::digest`],
//! and the trial digests fold into a campaign [`campaign_checksum`]. The
//! per-trial records are also the unit of distribution: a shard runs the
//! trial subset `i % shards == shard_id` of every cell, writes its
//! [`TrialStat`]s to disk ([`render_shard_json`]), and the coordinator
//! merges them back ([`parse_shard_json`]) — aggregation always walks the
//! per-trial stats in `(cell, trial)` order, so single-process and merged
//! sharded runs produce bit-identical rows and checksums.

use std::cell::RefCell;

use fttt::config::PaperParams;
use fttt::facemap::{FaceMap, RepairMode};
use fttt::replay::{digest_face_map, digest_hex, digest_world, parse_digest_hex, Digest};
use fttt::session::{SessionOptions, SessionRun, TrackStatus, TrackingSession};
use fttt::tracker::{Tracker, TrackerOptions};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wsn_network::{GroupSampler, Schedule, SensorField};
use wsn_parallel::{par_map, seed_for};
use wsn_telemetry as telemetry;
use wsn_telemetry::json::{format_f64, format_str, JsonValue};

/// Campaign workload parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CampaignConfig {
    /// Master seed; every trial derives deterministically from it.
    pub seed: u64,
    /// Monte-Carlo trials per campaign cell.
    pub trials: usize,
    /// Trace duration per trial, seconds.
    pub duration: f64,
    /// Deployed node count.
    pub nodes: usize,
}

impl CampaignConfig {
    /// The full campaign workload.
    pub fn full(seed: u64) -> Self {
        Self {
            seed,
            trials: 6,
            duration: 40.0,
            nodes: 10,
        }
    }

    /// A reduced smoke workload (seeded, a few seconds of wall clock) for
    /// tier-1 CI.
    pub fn fast(seed: u64) -> Self {
        Self {
            seed,
            trials: 3,
            duration: 20.0,
            nodes: 8,
        }
    }
}

/// The node-failure rates of the sweep family (the paper's fault axis).
pub const SWEEP_RATES: [f64; 4] = [0.0, 0.1, 0.3, 0.5];

/// Regime label of the sweep family rows.
pub const SWEEP_REGIME: &str = "node-failure";

/// Regime label of the blackout showcase (the Lost→Tracking regression
/// anchor).
pub const BLACKOUT_REGIME: &str = "blackout";

/// The churn campaign's schedule: a staggered death storm (nodes 1, 3, 5
/// die at t = 4, 6, 8) whose casualties all come back 6 s later — both
/// repair directions (retire *and* re-rasterize) exercised inside even
/// the fast config's 20 s trace.
pub const CHURN_SCHEDULE: &str = "churn nodes=1,3,5 from=4 every=2 dead_for=6";

/// How a churn-campaign cell maintains its face map while nodes die and
/// return.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnPolicy {
    /// Never repair: sessions keep matching against the stale pristine
    /// map (dead nodes still silenced by the regime). The
    /// fault-oblivious control.
    Stale,
    /// Incremental repair per event ([`RepairMode::Incremental`]).
    Incremental,
    /// Full rebuild per event ([`RepairMode::Rebuild`]) — the reference
    /// trajectory the incremental path must digest-match.
    Rebuild,
}

/// The churn policies in campaign order, with their regime labels.
pub const CHURN_POLICIES: [(&str, ChurnPolicy); 3] = [
    ("churn-stale", ChurnPolicy::Stale),
    ("churn-incremental", ChurnPolicy::Incremental),
    ("churn-rebuild", ChurnPolicy::Rebuild),
];

/// Resolves a churn regime label back to its policy (`None` for
/// non-churn cells).
pub fn churn_policy_of(regime: &str) -> Option<ChurnPolicy> {
    CHURN_POLICIES
        .iter()
        .find(|(label, _)| *label == regime)
        .map(|&(_, policy)| policy)
}

/// The showcase regimes: `(label, schedule text)`. Windows are placed
/// inside even the fast config's 20 s trace.
pub fn showcase_regimes() -> Vec<(&'static str, &'static str)> {
    vec![
        ("burst", "burst enter=0.15 exit=0.35 loss_bad=0.95"),
        (BLACKOUT_REGIME, "outage from=8 until=14"),
        ("energy", "energy battery=0.003"),
        ("stuck", "stuck nodes=0,1 from=5"),
        ("drift", "drift nodes=2 from=5 rate=0.5"),
    ]
}

/// One campaign cell: a (regime, method) pair aggregated over trials.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignRow {
    /// Regime label (`node-failure` for the sweep family).
    pub regime: String,
    /// Method label.
    pub method: &'static str,
    /// Node-failure rate for sweep rows, `None` for showcase rows.
    pub fault_rate: Option<f64>,
    /// Mean over trials of the per-trial mean error, metres.
    pub mean_error: f64,
    /// Largest per-trial mean error (worst world).
    pub worst_error: f64,
    /// Mean fraction of rounds spent [`TrackStatus::Lost`].
    pub lost_fraction: f64,
    /// Mean fraction of rounds spent [`TrackStatus::Degraded`].
    pub degraded_fraction: f64,
    /// Trials that entered [`TrackStatus::Lost`] at least once.
    pub trials_lost: usize,
    /// Among `trials_lost`, the fraction that returned to
    /// [`TrackStatus::Tracking`] afterwards (1.0 when none were lost).
    pub recovery_rate: f64,
    /// Mean sampling times `k` per round (adaptive escalation cost).
    pub mean_samples: f64,
}

/// The two session-wrapped trackers under test.
const METHODS: [(&str, bool); 2] = [("FTTT-basic", false), ("FTTT-ext", true)];

/// Resolves a method label back to its `(label, extended)` pair — the
/// shard-file parser needs the `&'static str` identity.
fn method_by_label(label: &str) -> Option<(&'static str, bool)> {
    METHODS.iter().copied().find(|(name, _)| *name == label)
}

/// What a campaign runs: the built-in sweep + showcases, or one
/// user-provided schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignKind {
    /// The node-failure sweep, every showcase regime, and the churn
    /// family.
    Builtin,
    /// Both methods against one schedule (the CLI `--schedule` path).
    Custom {
        /// Row label.
        label: String,
        /// The schedule text (embedded in the journal header so a replay
        /// can re-run without the original file).
        schedule: String,
    },
    /// The live-topology-churn family: [`CHURN_SCHEDULE`] under every
    /// [`ChurnPolicy`], both methods.
    Churn,
}

/// The label a campaign kind carries in journal headers and the golden
/// checksum baseline.
pub fn campaign_kind_label(kind: &CampaignKind) -> &'static str {
    match kind {
        CampaignKind::Builtin => "builtin",
        CampaignKind::Custom { .. } => "custom",
        CampaignKind::Churn => "churn",
    }
}

/// One campaign cell's static identity, in deterministic campaign order.
#[derive(Debug, Clone, PartialEq)]
pub struct CellSpec {
    /// Index in campaign order (row order of the artifact).
    pub index: usize,
    /// Regime label.
    pub regime: String,
    /// Method label.
    pub method: &'static str,
    /// Extended sampling vectors?
    pub extended: bool,
    /// Node-failure rate for sweep cells.
    pub fault_rate: Option<f64>,
    /// The cell's schedule, as parseable text.
    pub schedule_text: String,
}

/// The cells a campaign kind expands to, in deterministic order.
///
/// # Panics
///
/// Panics if a custom schedule fails to parse (callers validate first) or
/// a built-in one does (a bug in this module).
pub fn campaign_cells(kind: &CampaignKind) -> Vec<CellSpec> {
    let mut cells = Vec::new();
    match kind {
        CampaignKind::Builtin => {
            for (method, extended) in METHODS {
                for rate in SWEEP_RATES {
                    cells.push(CellSpec {
                        index: cells.len(),
                        regime: SWEEP_REGIME.to_string(),
                        method,
                        extended,
                        fault_rate: Some(rate),
                        schedule_text: format!("static node_failure={rate}"),
                    });
                }
            }
            for (label, text) in showcase_regimes() {
                for (method, extended) in METHODS {
                    cells.push(CellSpec {
                        index: cells.len(),
                        regime: label.to_string(),
                        method,
                        extended,
                        fault_rate: None,
                        schedule_text: text.to_string(),
                    });
                }
            }
            cells.extend(churn_cells(cells.len()));
        }
        CampaignKind::Custom { label, schedule } => {
            Schedule::parse(schedule).expect("custom schedule must have been validated");
            for (method, extended) in METHODS {
                cells.push(CellSpec {
                    index: cells.len(),
                    regime: label.clone(),
                    method,
                    extended,
                    fault_rate: None,
                    schedule_text: schedule.clone(),
                });
            }
        }
        CampaignKind::Churn => cells.extend(churn_cells(0)),
    }
    cells
}

/// The churn family's cells (every policy × every method), starting at
/// `base` in campaign order. The builtin campaign appends these after
/// the showcases; [`CampaignKind::Churn`] runs exactly these.
fn churn_cells(base: usize) -> Vec<CellSpec> {
    let mut cells = Vec::new();
    for (label, _) in CHURN_POLICIES {
        for (method, extended) in METHODS {
            cells.push(CellSpec {
                index: base + cells.len(),
                regime: label.to_string(),
                method,
                extended,
                fault_rate: None,
                schedule_text: CHURN_SCHEDULE.to_string(),
            });
        }
    }
    cells
}

/// One completed trial: the unit the sharded runner ships between
/// processes and the unit aggregation/checksumming walk. Everything a
/// [`CampaignRow`] needs survives a JSON round-trip exactly — floats are
/// written with shortest-round-trip formatting, digests as hex strings.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialStat {
    /// Cell index into [`campaign_cells`] order.
    pub cell: usize,
    /// Trial index within the cell.
    pub trial: u64,
    /// The trial's derived RNG seed (`seed_for(cfg.seed, trial)`).
    pub seed: u64,
    /// Stable session id (deterministic across processes and threads).
    pub session: u64,
    /// Mean geographic error over the trial's rounds, metres.
    pub mean_error: f64,
    /// Rounds in the trial.
    pub rounds: u64,
    /// Rounds that ended [`TrackStatus::Lost`].
    pub lost_rounds: u64,
    /// Rounds that ended [`TrackStatus::Degraded`].
    pub degraded_rounds: u64,
    /// The session declared Lost and later returned to Tracking.
    pub recovered: bool,
    /// Total sampling times spent across the trial.
    pub total_samples: u64,
    /// The trial's replay digest (seed + per-round session state + regime
    /// state + live-node sets + ground-truth errors).
    pub digest: u64,
}

fn campaign_params(cfg: &CampaignConfig) -> PaperParams {
    PaperParams::default()
        .with_nodes(cfg.nodes)
        .with_cell_size(2.0)
}

/// The per-cell immutable context one trial runs against: the campaign's
/// shared deployment (the face map is built once per campaign and cloned
/// per trial — the build is deterministic, so this is purely a time
/// saver) plus the cell's parsed schedule.
struct TrialEnv<'a> {
    params: &'a PaperParams,
    field: &'a SensorField,
    map: &'a FaceMap,
    schedule: &'a Schedule,
    duration: f64,
}

/// Runs one seeded session trial, returning the run plus its replay
/// digest; `session_id` must be the trial's stable id.
///
/// For churn cells (`churn` is `Some`), the schedule's churn events are
/// applied between rounds at their simulation times: repairing policies
/// call [`TrackingSession::apply_churn`] and fold the post-repair map
/// epoch and [`digest_face_map`] into the world digest, so the digest
/// pins not just what the session saw but the exact map it matched
/// against after every repair. The stale policy applies nothing — the
/// regime still silences the dead columns, but the map (and the digest)
/// never move.
fn run_session_trial(
    env: &TrialEnv<'_>,
    extended: bool,
    churn: Option<ChurnPolicy>,
    seed: u64,
    session_id: u64,
) -> (SessionRun, u64) {
    let TrialEnv {
        params,
        field,
        map,
        schedule,
        duration,
    } = *env;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Grid deployment: the campaign compares fault regimes, so the
    // geometry is held fixed and only noise/faults vary per trial.
    let trace = params.random_trace(duration, &mut rng);
    let options = if extended {
        TrackerOptions {
            extended: true,
            ..TrackerOptions::heuristic()
        }
    } else {
        TrackerOptions::heuristic()
    };
    let session_options = SessionOptions::new(params.samples_k).with_max_speed(params.max_speed);
    let mut session = TrackingSession::new(Tracker::new(map.clone(), options), session_options)
        .with_session_id(session_id);
    // The engine and world digest are shared between the sampling closure
    // and the between-rounds churn closure; the two never run
    // concurrently, so runtime borrows are safe.
    let engine = RefCell::new(schedule.engine(field.len()));
    let base = params.sampler();
    let world = RefCell::new(Digest::new());
    let mut prev_t: Option<f64> = None;
    let run = session.run_with(
        &trace,
        &mut rng,
        |k, pos, t, r| {
            let sampler = GroupSampler {
                samples: k,
                ..base.clone()
            };
            let mut g = sampler.sample(field, pos, r);
            let mut engine = engine.borrow_mut();
            engine.apply(t, &mut g, r);
            digest_world(&mut world.borrow_mut(), &engine, &g);
            g
        },
        |s, t| {
            let Some(policy) = churn else { return };
            let events = engine.borrow().churn_events_between(prev_t, t);
            prev_t = Some(t);
            let mode = match policy {
                ChurnPolicy::Stale => None,
                ChurnPolicy::Incremental => Some(RepairMode::Incremental),
                ChurnPolicy::Rebuild => Some(RepairMode::Rebuild),
            };
            for e in events {
                let Some(mode) = mode else { continue };
                let report = s.apply_churn(t, e.node, e.death, mode);
                let mut w = world.borrow_mut();
                w.write_u64(report.epoch);
                w.write_u64(digest_face_map(s.tracker().map()));
            }
        },
    );
    let mut digest = Digest::new();
    digest.write_u64(seed);
    digest.write_digest(world.into_inner());
    fttt::replay::digest_run(&mut digest, &run);
    (run, digest.value())
}

fn trial_stat_of(
    cell: &CellSpec,
    trial: u64,
    seed: u64,
    session: u64,
    run: &SessionRun,
    digest: u64,
) -> TrialStat {
    TrialStat {
        cell: cell.index,
        trial,
        seed,
        session,
        mean_error: run.error_stats().mean,
        rounds: run.rounds.len() as u64,
        lost_rounds: run.rounds_in(TrackStatus::Lost) as u64,
        degraded_rounds: run.rounds_in(TrackStatus::Degraded) as u64,
        recovered: run.recovered_from_lost(),
        total_samples: run.total_samples() as u64,
        digest,
    }
}

/// The outcome of running (a shard of) a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignStats {
    /// The campaign's cells, in order.
    pub cells: Vec<CellSpec>,
    /// Per-trial records, sorted by `(cell, trial)`. A shard holds only
    /// its trial subset.
    pub stats: Vec<TrialStat>,
    /// Digest of the (shared, deterministic) face map.
    pub map_digest: u64,
}

/// Runs the trials of every cell whose index satisfies
/// `trial % shards == shard_id` — `shards = 1, shard_id = 0` is the full
/// single-process campaign. Emits the campaign header and one per-trial
/// event into the trace journal when one is installed.
///
/// # Panics
///
/// Panics if `cfg.trials == 0`, `shard_id >= shards`, or a schedule fails
/// to parse.
pub fn run_campaign_stats(
    cfg: &CampaignConfig,
    kind: &CampaignKind,
    shards: usize,
    shard_id: usize,
) -> CampaignStats {
    assert!(cfg.trials > 0, "need at least one trial");
    assert!(
        shards > 0 && shard_id < shards,
        "shard {shard_id}/{shards} out of range"
    );
    let params = campaign_params(cfg);
    let field = params.grid_field();
    let map = params.face_map(&field);
    let map_digest = fttt::replay::digest_face_map(&map);
    let cells = campaign_cells(kind);
    journal_header(cfg, kind, &cells, map_digest);
    let mut stats = Vec::with_capacity(cells.len() * cfg.trials.div_ceil(shards));
    for cell in &cells {
        let schedule = Schedule::parse(&cell.schedule_text).expect("cell schedule is valid");
        let churn = churn_policy_of(&cell.regime);
        let env = TrialEnv {
            params: &params,
            field: &field,
            map: &map,
            schedule: &schedule,
            duration: cfg.duration,
        };
        let idx: Vec<u64> = (0..cfg.trials as u64)
            .filter(|i| *i as usize % shards == shard_id)
            .collect();
        let cell_stats: Vec<TrialStat> = par_map(&idx, |_, &i| {
            let seed = seed_for(cfg.seed, i);
            // The epoch folded into the id is the map's at session start —
            // always the pristine build here, but a harness that re-runs
            // a trial against an already-churned map keys differently.
            let session = fttt::replay::stable_session_id(
                &cell.regime,
                cell.method,
                cell.fault_rate,
                i,
                map.epoch(),
            );
            let (run, digest) = run_session_trial(&env, cell.extended, churn, seed, session);
            let stat = trial_stat_of(cell, i, seed, session, &run, digest);
            journal_trial(cell, &stat);
            stat
        });
        stats.extend(cell_stats);
    }
    CampaignStats {
        cells,
        stats,
        map_digest,
    }
}

/// Emits the `fttt.campaign.header` journal event: everything a replay
/// needs to re-run the campaign (config, kind, schedule text, map digest).
fn journal_header(cfg: &CampaignConfig, kind: &CampaignKind, cells: &[CellSpec], map_digest: u64) {
    if !telemetry::journal_enabled() {
        return;
    }
    use telemetry::ArgValue;
    // Full-range u64s travel as hex strings everywhere they are
    // serialized: JSON numbers are f64, exact only below 2^53, and both
    // the master seed and the derived trial seeds use all 64 bits.
    let mut args = vec![
        ("seed", ArgValue::Str(digest_hex(cfg.seed))),
        ("trials", ArgValue::U64(cfg.trials as u64)),
        ("duration_s", ArgValue::F64(cfg.duration)),
        ("nodes", ArgValue::U64(cfg.nodes as u64)),
        ("cells", ArgValue::U64(cells.len() as u64)),
        ("map_digest", ArgValue::Str(digest_hex(map_digest))),
    ];
    // "campaign_kind", not "kind": the JSONL event root already carries a
    // "kind" (the trace-event kind tag) and the replay parser reads both
    // layers.
    args.push((
        "campaign_kind",
        ArgValue::Str(campaign_kind_label(kind).into()),
    ));
    if let CampaignKind::Custom { label, schedule } = kind {
        args.push(("label", ArgValue::Str(label.clone())));
        args.push(("schedule", ArgValue::Str(schedule.clone())));
    }
    telemetry::trace_instant("fttt.campaign.header", args);
}

/// Emits one `fttt.campaign.trial` journal event mapping the trial's
/// stable session id to its cell identity and replay digest.
fn journal_trial(cell: &CellSpec, stat: &TrialStat) {
    if !telemetry::journal_enabled() {
        return;
    }
    use telemetry::ArgValue;
    let mut args = vec![
        ("session", ArgValue::U64(stat.session)),
        ("cell", ArgValue::U64(stat.cell as u64)),
        ("regime", ArgValue::Str(cell.regime.clone())),
        ("method", ArgValue::Str(cell.method.into())),
        ("trial", ArgValue::U64(stat.trial)),
        ("seed", ArgValue::Str(digest_hex(stat.seed))),
        ("rounds", ArgValue::U64(stat.rounds)),
        ("digest", ArgValue::Str(digest_hex(stat.digest))),
    ];
    if let Some(rate) = cell.fault_rate {
        args.push(("fault_rate", ArgValue::F64(rate)));
    }
    telemetry::trace_instant("fttt.campaign.trial", args);
}

/// Aggregates per-trial stats into campaign rows.
///
/// Walks the stats in `(cell, trial)` order — sorting first — so the
/// floating-point reduction order is identical no matter how the stats
/// were produced (one process, merged shards, any thread count).
///
/// # Panics
///
/// Panics if any cell is missing trials (an incomplete shard set must not
/// silently aggregate into wrong rows).
pub fn rows_from_stats(
    cfg: &CampaignConfig,
    cells: &[CellSpec],
    stats: &[TrialStat],
) -> Vec<CampaignRow> {
    let mut stats: Vec<&TrialStat> = stats.iter().collect();
    stats.sort_by_key(|s| (s.cell, s.trial));
    let mut rows = Vec::with_capacity(cells.len());
    for cell in cells {
        let cell_stats: Vec<&&TrialStat> = stats.iter().filter(|s| s.cell == cell.index).collect();
        assert_eq!(
            cell_stats.len(),
            cfg.trials,
            "cell {} ({}/{}) has {} trials, campaign wants {} — merged an incomplete shard set?",
            cell.index,
            cell.regime,
            cell.method,
            cell_stats.len(),
            cfg.trials
        );
        let n = cell_stats.len() as f64;
        let lost: Vec<&&&TrialStat> = cell_stats.iter().filter(|s| s.lost_rounds > 0).collect();
        let recovery_rate = if lost.is_empty() {
            1.0
        } else {
            lost.iter().filter(|s| s.recovered).count() as f64 / lost.len() as f64
        };
        rows.push(CampaignRow {
            regime: cell.regime.clone(),
            method: cell.method,
            fault_rate: cell.fault_rate,
            mean_error: cell_stats.iter().map(|s| s.mean_error).sum::<f64>() / n,
            worst_error: cell_stats
                .iter()
                .map(|s| s.mean_error)
                .fold(f64::NEG_INFINITY, f64::max),
            lost_fraction: cell_stats
                .iter()
                .map(|s| s.lost_rounds as f64 / s.rounds as f64)
                .sum::<f64>()
                / n,
            degraded_fraction: cell_stats
                .iter()
                .map(|s| s.degraded_rounds as f64 / s.rounds as f64)
                .sum::<f64>()
                / n,
            trials_lost: lost.len(),
            recovery_rate,
            mean_samples: cell_stats
                .iter()
                .map(|s| s.total_samples as f64 / s.rounds as f64)
                .sum::<f64>()
                / n,
        });
    }
    rows
}

/// The campaign checksum: a pure function of `(config, cells, map, every
/// trial digest)` folded in canonical `(cell, trial)` order. Wall-clock
/// quantities (durations, timestamps, telemetry histograms) are *not*
/// folded — the checksum pins the simulation, not the machine.
pub fn campaign_checksum(
    cfg: &CampaignConfig,
    cells: &[CellSpec],
    map_digest: u64,
    stats: &[TrialStat],
) -> u64 {
    let mut d = Digest::new();
    d.write_u64(cfg.seed);
    d.write_u64(cfg.trials as u64);
    d.write_f64(cfg.duration);
    d.write_u64(cfg.nodes as u64);
    d.write_u64(map_digest);
    d.write_u64(cells.len() as u64);
    for cell in cells {
        d.write_str(&cell.regime);
        d.write_str(cell.method);
        d.write_bool(cell.fault_rate.is_some());
        d.write_f64(cell.fault_rate.unwrap_or(0.0));
        d.write_str(&cell.schedule_text);
    }
    let mut ordered: Vec<&TrialStat> = stats.iter().collect();
    ordered.sort_by_key(|s| (s.cell, s.trial));
    d.write_u64(ordered.len() as u64);
    for s in ordered {
        d.write_u64(s.cell as u64);
        d.write_u64(s.trial);
        d.write_u64(s.digest);
    }
    d.value()
}

/// Runs the whole campaign: the node-failure sweep then the showcase
/// regimes, for both methods, in deterministic row order.
///
/// # Panics
///
/// Panics if `cfg.trials == 0` or a built-in schedule fails to parse
/// (which would be a bug in this module).
pub fn run_campaign(cfg: &CampaignConfig) -> Vec<CampaignRow> {
    let cs = run_campaign_stats(cfg, &CampaignKind::Builtin, 1, 0);
    rows_from_stats(cfg, &cs.cells, &cs.stats)
}

/// Runs both session-wrapped methods against one user-provided schedule
/// (the CLI `campaign --schedule` path). Row order follows the method
/// order.
///
/// # Panics
///
/// Panics if `cfg.trials == 0` or `schedule_text` does not parse (the CLI
/// validates it first).
pub fn run_custom_schedule(
    cfg: &CampaignConfig,
    label: &str,
    schedule_text: &str,
) -> Vec<CampaignRow> {
    let kind = CampaignKind::Custom {
        label: label.to_string(),
        schedule: schedule_text.to_string(),
    };
    let cs = run_campaign_stats(cfg, &kind, 1, 0);
    rows_from_stats(cfg, &cs.cells, &cs.stats)
}

/// The churn family's strongest invariant, checked over the *per-trial*
/// stats: the `churn-incremental` and `churn-rebuild` cells of the same
/// method must have produced bit-identical trial digests — the
/// incrementally repaired map walked the exact trajectory the
/// rebuild-per-event reference did, round for round, epoch for epoch.
/// Returns one message per mismatch; empty for campaigns without churn
/// cells.
pub fn check_churn_digests(cells: &[CellSpec], stats: &[TrialStat]) -> Vec<String> {
    let mut violations = Vec::new();
    for (method, _) in METHODS {
        let cell_of = |policy_label: &str| {
            cells
                .iter()
                .find(|c| c.regime == policy_label && c.method == method)
        };
        let (Some(inc), Some(reb)) = (cell_of("churn-incremental"), cell_of("churn-rebuild"))
        else {
            continue;
        };
        let digest_of = |cell: usize, trial: u64| {
            stats
                .iter()
                .find(|s| s.cell == cell && s.trial == trial)
                .map(|s| s.digest)
        };
        let trials: Vec<u64> = stats
            .iter()
            .filter(|s| s.cell == inc.index)
            .map(|s| s.trial)
            .collect();
        for trial in trials {
            match (digest_of(inc.index, trial), digest_of(reb.index, trial)) {
                (Some(a), Some(b)) if a != b => violations.push(format!(
                    "{method} churn trial {trial}: incremental digest {} != rebuild digest {} — \
                     incremental repair left the rebuild-per-event trajectory",
                    digest_hex(a),
                    digest_hex(b)
                )),
                _ => {}
            }
        }
    }
    violations
}

/// Checks the graceful-degradation envelopes; returns one message per
/// violation (empty = campaign passes).
///
/// * every cell's error is finite and positive;
/// * no cell degrades past a blind field-centre guess
///   (`0.55 × field_side`);
/// * per method, sweep means stay inside the envelope anchored at the
///   fault-free mean: `mean(rate) ≤ 3 × mean(0) + 12 m`;
/// * the blackout showcase actually drives sessions Lost, and a majority
///   of those sessions recover to Tracking.
pub fn check_envelopes(rows: &[CampaignRow], field_side: f64) -> Vec<String> {
    let mut violations = Vec::new();
    let blind_guess = 0.55 * field_side;
    for r in rows {
        if !r.mean_error.is_finite() || r.mean_error <= 0.0 {
            violations.push(format!(
                "{}/{}: mean error {} is not finite-positive",
                r.regime, r.method, r.mean_error
            ));
        } else if r.mean_error > blind_guess {
            violations.push(format!(
                "{}/{}: mean error {:.1} m exceeds the blind-guess scale {:.1} m",
                r.regime, r.method, r.mean_error, blind_guess
            ));
        }
    }
    for (label, _) in METHODS {
        let sweep: Vec<&CampaignRow> = rows
            .iter()
            .filter(|r| r.regime == SWEEP_REGIME && r.method == label)
            .collect();
        // No sweep rows at all: a custom or churn campaign — nothing to
        // anchor. A *partial* sweep (rows but no rate-0 anchor) is still
        // an error.
        if sweep.is_empty() {
            continue;
        }
        let Some(baseline) = sweep.iter().find(|r| r.fault_rate == Some(0.0)) else {
            violations.push(format!("{label}: sweep has no fault-free baseline row"));
            continue;
        };
        for r in &sweep {
            let bound = 3.0 * baseline.mean_error + 12.0;
            if r.mean_error > bound {
                violations.push(format!(
                    "{label}: rate {:?} mean {:.1} m breaks the envelope {:.1} m \
                     (3 × fault-free {:.1} m + 12 m)",
                    r.fault_rate, r.mean_error, bound, baseline.mean_error
                ));
            }
        }
    }
    for r in rows.iter().filter(|r| r.regime == BLACKOUT_REGIME) {
        if r.trials_lost == 0 {
            violations.push(format!(
                "{}/{}: no trial entered Lost during a total blackout",
                r.regime, r.method
            ));
        } else if r.recovery_rate < 0.5 {
            violations.push(format!(
                "{}/{}: only {:.0}% of lost sessions recovered after the blackout",
                r.regime,
                r.method,
                100.0 * r.recovery_rate
            ));
        }
    }
    violations
}

/// The field side the campaign runs on (for envelope scaling).
pub fn campaign_field_side(cfg: &CampaignConfig) -> f64 {
    campaign_params(cfg).field_side
}

/// Hand-formatted JSON artifact (the vendored `serde_json` is a
/// compile-only stub). When a telemetry snapshot is supplied it is
/// embedded under a `"metrics"` key so `BENCH_robustness.json` carries
/// the campaign's instrumentation counters alongside the envelopes.
///
/// Every float goes through [`wsn_telemetry::json::format_f64`] — the
/// shortest string that parses back to the exact same bits — so the
/// replay/diff parser and the sharded merge see the values the run
/// computed, not a `{:.3}` truncation of them. The campaign checksum is
/// serialized as a hex *string* (JSON numbers are f64 and lose integer
/// precision above 2⁵³).
pub fn render_json(
    rows: &[CampaignRow],
    cfg: &CampaignConfig,
    violations: &[String],
    metrics: Option<&wsn_telemetry::Snapshot>,
    checksum: Option<u64>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"fault_campaign\",\n");
    out.push_str("  \"config\": {\n");
    out.push_str(&format!("    \"seed\": {},\n", cfg.seed));
    out.push_str(&format!("    \"trials\": {},\n", cfg.trials));
    out.push_str(&format!(
        "    \"duration_s\": {},\n",
        format_f64(cfg.duration)
    ));
    out.push_str(&format!("    \"nodes\": {},\n", cfg.nodes));
    out.push_str(&format!(
        "    \"field_side_m\": {},\n",
        format_f64(campaign_field_side(cfg))
    ));
    let rates: Vec<String> = SWEEP_RATES.iter().map(|r| format_f64(*r)).collect();
    out.push_str(&format!("    \"sweep_rates\": [{}],\n", rates.join(", ")));
    out.push_str(
        "    \"envelope\": \"mean(rate) <= 3*mean(0) + 12 m; all cells <= 0.55*field_side; \
         blackout must reach Lost and majority-recover\"\n",
    );
    out.push_str("  },\n");
    if let Some(sum) = checksum {
        out.push_str(&format!("  \"checksum\": \"{}\",\n", digest_hex(sum)));
    }
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"regime\": {},\n", format_str(&r.regime)));
        out.push_str(&format!("      \"method\": {},\n", format_str(r.method)));
        match r.fault_rate {
            Some(rate) => out.push_str(&format!("      \"fault_rate\": {},\n", format_f64(rate))),
            None => out.push_str("      \"fault_rate\": null,\n"),
        }
        out.push_str(&format!(
            "      \"mean_error_m\": {},\n",
            format_f64(r.mean_error)
        ));
        out.push_str(&format!(
            "      \"worst_error_m\": {},\n",
            format_f64(r.worst_error)
        ));
        out.push_str(&format!(
            "      \"lost_fraction\": {},\n",
            format_f64(r.lost_fraction)
        ));
        out.push_str(&format!(
            "      \"degraded_fraction\": {},\n",
            format_f64(r.degraded_fraction)
        ));
        out.push_str(&format!("      \"trials_lost\": {},\n", r.trials_lost));
        out.push_str(&format!(
            "      \"recovery_rate\": {},\n",
            format_f64(r.recovery_rate)
        ));
        out.push_str(&format!(
            "      \"mean_samples\": {}\n",
            format_f64(r.mean_samples)
        ));
        out.push_str(if i + 1 == rows.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"violations\": {},\n", violations.len()));
    if let Some(snap) = metrics {
        out.push_str(&format!(
            "  \"metrics\": {},\n",
            snap.to_json_indented("  ")
        ));
    }
    out.push_str(&format!("  \"pass\": {}\n", violations.is_empty()));
    out.push_str("}\n");
    out
}

/// Renders one shard's output: config echo, shard coordinates, per-trial
/// stats and the shard's telemetry snapshot. The coordinator re-parses
/// this with [`parse_shard_json`] and merges.
pub fn render_shard_json(
    cfg: &CampaignConfig,
    shards: usize,
    shard_id: usize,
    stats: &[TrialStat],
    map_digest: u64,
    metrics: &wsn_telemetry::Snapshot,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"fault_campaign_shard\",\n");
    out.push_str(&format!("  \"shard\": {shard_id},\n"));
    out.push_str(&format!("  \"shards\": {shards},\n"));
    out.push_str("  \"config\": {\n");
    // The master seed is a full-range u64: hex string, not a JSON number
    // (f64 is exact only below 2^53).
    out.push_str(&format!("    \"seed\": \"{}\",\n", digest_hex(cfg.seed)));
    out.push_str(&format!("    \"trials\": {},\n", cfg.trials));
    out.push_str(&format!(
        "    \"duration_s\": {},\n",
        format_f64(cfg.duration)
    ));
    out.push_str(&format!("    \"nodes\": {}\n", cfg.nodes));
    out.push_str("  },\n");
    out.push_str(&format!(
        "  \"map_digest\": \"{}\",\n",
        digest_hex(map_digest)
    ));
    out.push_str("  \"trials\": [\n");
    for (i, s) in stats.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"cell\": {}, \"trial\": {}, \"seed\": \"{}\", \"session\": {}, \
             \"mean_error\": {}, \"rounds\": {}, \"lost_rounds\": {}, \
             \"degraded_rounds\": {}, \"recovered\": {}, \"total_samples\": {}, \
             \"digest\": \"{}\" }}{}\n",
            s.cell,
            s.trial,
            digest_hex(s.seed),
            s.session,
            format_f64(s.mean_error),
            s.rounds,
            s.lost_rounds,
            s.degraded_rounds,
            s.recovered,
            s.total_samples,
            digest_hex(s.digest),
            if i + 1 == stats.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"metrics\": {}\n",
        metrics.to_json_indented("  ")
    ));
    out.push_str("}\n");
    out
}

/// A parsed shard file.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardFile {
    /// Which shard wrote it.
    pub shard: usize,
    /// Out of how many.
    pub shards: usize,
    /// The config the shard ran (must match the coordinator's).
    pub config: CampaignConfig,
    /// The shard's face-map digest (must match across shards).
    pub map_digest: u64,
    /// The shard's per-trial records.
    pub stats: Vec<TrialStat>,
    /// The shard's telemetry snapshot.
    pub metrics: wsn_telemetry::Snapshot,
}

fn field_u64(v: &JsonValue, key: &str, ctx: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("{ctx}: missing integral {key:?}"))
}

fn field_f64(v: &JsonValue, key: &str, ctx: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(JsonValue::as_f64)
        .ok_or_else(|| format!("{ctx}: missing numeric {key:?}"))
}

/// Parses a [`render_shard_json`] document back.
pub fn parse_shard_json(text: &str) -> Result<ShardFile, String> {
    let doc = JsonValue::parse(text).map_err(|e| format!("shard file: {e}"))?;
    if doc.get("bench").and_then(JsonValue::as_str) != Some("fault_campaign_shard") {
        return Err("shard file: not a fault_campaign_shard document".into());
    }
    let cfg_doc = doc
        .get("config")
        .ok_or_else(|| "shard file: missing \"config\"".to_string())?;
    let config = CampaignConfig {
        seed: cfg_doc
            .get("seed")
            .and_then(JsonValue::as_str)
            .and_then(parse_digest_hex)
            .ok_or_else(|| "shard config: missing hex \"seed\"".to_string())?,
        trials: field_u64(cfg_doc, "trials", "shard config")? as usize,
        duration: field_f64(cfg_doc, "duration_s", "shard config")?,
        nodes: field_u64(cfg_doc, "nodes", "shard config")? as usize,
    };
    let map_digest = doc
        .get("map_digest")
        .and_then(JsonValue::as_str)
        .and_then(parse_digest_hex)
        .ok_or_else(|| "shard file: missing hex \"map_digest\"".to_string())?;
    let trials = doc
        .get("trials")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| "shard file: missing \"trials\" array".to_string())?;
    let mut stats = Vec::with_capacity(trials.len());
    for (i, t) in trials.iter().enumerate() {
        let ctx = format!("shard trial {i}");
        stats.push(TrialStat {
            cell: field_u64(t, "cell", &ctx)? as usize,
            trial: field_u64(t, "trial", &ctx)?,
            seed: t
                .get("seed")
                .and_then(JsonValue::as_str)
                .and_then(parse_digest_hex)
                .ok_or_else(|| format!("{ctx}: missing hex \"seed\""))?,
            session: field_u64(t, "session", &ctx)?,
            mean_error: field_f64(t, "mean_error", &ctx)?,
            rounds: field_u64(t, "rounds", &ctx)?,
            lost_rounds: field_u64(t, "lost_rounds", &ctx)?,
            degraded_rounds: field_u64(t, "degraded_rounds", &ctx)?,
            recovered: t
                .get("recovered")
                .and_then(JsonValue::as_bool)
                .ok_or_else(|| format!("{ctx}: missing boolean \"recovered\""))?,
            total_samples: field_u64(t, "total_samples", &ctx)?,
            digest: t
                .get("digest")
                .and_then(JsonValue::as_str)
                .and_then(parse_digest_hex)
                .ok_or_else(|| format!("{ctx}: missing hex \"digest\""))?,
        });
    }
    let metrics = doc
        .get("metrics")
        .ok_or_else(|| "shard file: missing \"metrics\"".to_string())
        .and_then(wsn_telemetry::Snapshot::from_json_value)?;
    Ok(ShardFile {
        shard: field_u64(&doc, "shard", "shard file")? as usize,
        shards: field_u64(&doc, "shards", "shard file")? as usize,
        config,
        map_digest,
        stats,
        metrics,
    })
}

/// Re-export: labels the shard-merge and replay paths use to resolve
/// methods.
pub fn method_labels() -> Vec<&'static str> {
    METHODS.iter().map(|(label, _)| *label).collect()
}

/// Looks up whether a method label runs extended vectors (shard/replay
/// parsers reject unknown labels).
pub fn method_extended(label: &str) -> Option<bool> {
    method_by_label(label).map(|(_, extended)| extended)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn showcase_schedules_all_parse() {
        for (label, text) in showcase_regimes() {
            assert!(Schedule::parse(text).is_ok(), "{label} schedule must parse");
        }
    }

    #[test]
    fn single_trial_cell_is_deterministic() {
        let cfg = CampaignConfig {
            seed: 9,
            trials: 1,
            duration: 5.0,
            nodes: 8,
        };
        let params = campaign_params(&cfg);
        let field = params.grid_field();
        let map = params.face_map(&field);
        let schedule = Schedule::parse("static node_failure=0.3").unwrap();
        let env = TrialEnv {
            params: &params,
            field: &field,
            map: &map,
            schedule: &schedule,
            duration: cfg.duration,
        };
        let a = run_session_trial(&env, false, None, 123, 1);
        let b = run_session_trial(&env, false, None, 123, 1);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1, "trial digests must agree");
        // A different seed must move the digest.
        let c = run_session_trial(&env, false, None, 124, 1);
        assert_ne!(a.1, c.1, "different seed, same digest — digest is blind");
    }

    /// The sharding invariant, in miniature: running the trials of every
    /// cell split across 3 "shards" and merging must reproduce the
    /// single-process rows bit-for-bit and the same campaign checksum.
    #[test]
    fn sharded_stats_merge_to_identical_rows_and_checksum() {
        let cfg = CampaignConfig {
            seed: 5,
            trials: 3,
            duration: 4.0,
            nodes: 8,
        };
        let kind = CampaignKind::Custom {
            label: "mini".into(),
            schedule: "static node_failure=0.2".into(),
        };
        let single = run_campaign_stats(&cfg, &kind, 1, 0);
        let mut merged: Vec<TrialStat> = Vec::new();
        let mut map_digests = Vec::new();
        for shard_id in 0..3 {
            let part = run_campaign_stats(&cfg, &kind, 3, shard_id);
            assert_eq!(part.cells, single.cells);
            map_digests.push(part.map_digest);
            merged.extend(part.stats);
        }
        assert!(map_digests.iter().all(|d| *d == single.map_digest));
        // Shards see disjoint trial subsets that union to the full set.
        assert_eq!(merged.len(), single.stats.len());

        let rows_single = rows_from_stats(&cfg, &single.cells, &single.stats);
        let rows_merged = rows_from_stats(&cfg, &single.cells, &merged);
        assert_eq!(rows_single, rows_merged);
        assert_eq!(
            campaign_checksum(&cfg, &single.cells, single.map_digest, &single.stats),
            campaign_checksum(&cfg, &single.cells, single.map_digest, &merged),
        );
    }

    /// Shard files survive the disk round-trip exactly: stats (floats
    /// included) and metrics parse back equal.
    #[test]
    fn shard_json_round_trips_exactly() {
        let cfg = CampaignConfig {
            seed: 11,
            trials: 2,
            duration: 3.0,
            nodes: 8,
        };
        let kind = CampaignKind::Custom {
            label: "rt".into(),
            schedule: "burst enter=0.3 exit=0.3 loss_bad=0.9".into(),
        };
        let part = run_campaign_stats(&cfg, &kind, 2, 1);
        let registry = wsn_telemetry::Registry::new();
        registry.counter("wsn.regime.activations").add(3);
        registry.gauge("fttt.session.samples_k").set(0.1 + 0.2);
        let snap = registry.snapshot();
        let text = render_shard_json(&cfg, 2, 1, &part.stats, part.map_digest, &snap);
        let back = parse_shard_json(&text).unwrap();
        assert_eq!(back.shard, 1);
        assert_eq!(back.shards, 2);
        assert_eq!(back.config, cfg);
        assert_eq!(back.map_digest, part.map_digest);
        assert_eq!(back.stats, part.stats);
        assert_eq!(back.metrics, snap);
    }

    #[test]
    fn incomplete_merge_is_rejected_loudly() {
        let cfg = CampaignConfig {
            seed: 5,
            trials: 2,
            duration: 3.0,
            nodes: 8,
        };
        let kind = CampaignKind::Custom {
            label: "mini".into(),
            schedule: "static node_failure=0.2".into(),
        };
        let part = run_campaign_stats(&cfg, &kind, 2, 0);
        let result = std::panic::catch_unwind(|| rows_from_stats(&cfg, &part.cells, &part.stats));
        assert!(result.is_err(), "one shard of two must not aggregate");
    }

    #[test]
    fn envelope_flags_blowup_and_missing_baseline() {
        let row = |regime: &str, rate: Option<f64>, mean: f64| CampaignRow {
            regime: regime.to_string(),
            method: "FTTT-basic",
            fault_rate: rate,
            mean_error: mean,
            worst_error: mean,
            lost_fraction: 0.0,
            degraded_fraction: 0.0,
            trials_lost: 0,
            recovery_rate: 1.0,
            mean_samples: 5.0,
        };
        // A 0-rate baseline of 5 m and a 0.5-rate mean of 40 m breaks
        // 3·5 + 12 = 27 m. FTTT-ext has no sweep rows at all, which is a
        // campaign without a sweep family for that method — skipped, not
        // flagged.
        let rows = vec![
            row(SWEEP_REGIME, Some(0.0), 5.0),
            row(SWEEP_REGIME, Some(0.5), 40.0),
        ];
        let v = check_envelopes(&rows, 100.0);
        assert_eq!(v.len(), 1, "exactly the envelope break: {v:?}");
        assert!(v[0].contains("breaks the envelope"), "{v:?}");
        // A partial sweep — rows but no rate-0 anchor — is still flagged.
        let rows = vec![row(SWEEP_REGIME, Some(0.5), 10.0)];
        let v = check_envelopes(&rows, 100.0);
        assert!(
            v.iter().any(|m| m.contains("no fault-free baseline")),
            "{v:?}"
        );
        // A blackout row that never reached Lost is a violation too.
        let rows = vec![row(BLACKOUT_REGIME, None, 10.0)];
        let v = check_envelopes(&rows, 100.0);
        assert!(v.iter().any(|m| m.contains("entered Lost")), "{v:?}");
    }

    #[test]
    fn json_is_well_formed_enough() {
        let cfg = CampaignConfig::fast(1);
        let rows = vec![CampaignRow {
            regime: "burst".into(),
            method: "FTTT-basic",
            fault_rate: None,
            mean_error: 9.5,
            worst_error: 12.0,
            lost_fraction: 0.1,
            degraded_fraction: 0.2,
            trials_lost: 1,
            recovery_rate: 1.0,
            mean_samples: 6.0,
        }];
        let json = render_json(&rows, &cfg, &[], None, None);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"fault_rate\": null"));
        assert!(json.contains("\"pass\": true"));
        assert!(!json.contains("\"metrics\""));
        assert!(!json.contains("\"checksum\""));

        let registry = wsn_telemetry::Registry::new();
        registry.counter("wsn.regime.activations").add(7);
        let snap = registry.snapshot();
        let json = render_json(&rows, &cfg, &[], Some(&snap), Some(0xdead_beef));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"metrics\""));
        assert!(json.contains("\"wsn.regime.activations\": 7"));
        assert!(json.contains("\"checksum\": \"0x00000000deadbeef\""));
    }

    /// The artifact's floats must round-trip exactly through the shared
    /// JSON parser — the `{:.3}` truncation this replaces could not.
    #[test]
    fn artifact_floats_round_trip_exactly() {
        let cfg = CampaignConfig::fast(1);
        let mean = 9.123456789012345;
        let rows = vec![CampaignRow {
            regime: "burst".into(),
            method: "FTTT-basic",
            fault_rate: Some(0.1),
            mean_error: mean,
            worst_error: mean * 1.5,
            lost_fraction: 1.0 / 3.0,
            degraded_fraction: 0.1 + 0.2,
            trials_lost: 1,
            recovery_rate: 2.0 / 3.0,
            mean_samples: 5.123,
        }];
        let json = render_json(&rows, &cfg, &[], None, None);
        let doc = JsonValue::parse(&json).unwrap();
        let row = &doc.get("rows").and_then(JsonValue::as_array).unwrap()[0];
        for (key, want) in [
            ("mean_error_m", mean),
            ("worst_error_m", mean * 1.5),
            ("lost_fraction", 1.0 / 3.0),
            ("degraded_fraction", 0.1 + 0.2),
            ("recovery_rate", 2.0 / 3.0),
            ("mean_samples", 5.123),
        ] {
            let got = row.get(key).and_then(JsonValue::as_f64).unwrap();
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "{key} mangled: {want} -> {got}"
            );
        }
    }
}
