//! Section 5.2: the tracking-error analysis.
//!
//! Validates `E_N = N·f` (expected vector-distance error when the target
//! sits in N pairs' uncertain areas) against Monte Carlo, and tabulates the
//! worst-case geographic bound of eq. (10) over density / range / k.

use fttt::theory::{expected_vector_error, worst_case_error_bound};
use fttt_bench::{Cli, Table};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use wsn_parallel::{par_map, seed_for};

fn empirical_vector_error(k: usize, n_pairs: usize, trials: usize, seed: u64) -> f64 {
    let idx: Vec<u64> = (0..trials as u64).collect();
    let errs: Vec<u32> = par_map(&idx, |_, &i| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed_for(seed, i));
        let mut missed = 0u32;
        for _ in 0..n_pairs {
            let mut seq = false;
            let mut rev = false;
            for _ in 0..k {
                if rng.gen::<bool>() {
                    seq = true;
                } else {
                    rev = true;
                }
            }
            if !(seq && rev) {
                missed += 1;
            }
        }
        missed
    });
    errs.iter().copied().sum::<u32>() as f64 / trials as f64
}

fn main() {
    let cli = Cli::parse();
    let trials = cli.trials_or(100_000);

    let mut t = Table::new(
        "Section 5.2 — expected vector error E_N = N·f vs Monte Carlo",
        &["k", "pairs N", "E_N theory", "E_N empirical", "|Δ|"],
    );
    for (k, n) in [
        (3usize, 4usize),
        (3, 10),
        (5, 10),
        (5, 45),
        (7, 45),
        (9, 190),
    ] {
        let theory = expected_vector_error(k, n);
        let emp = empirical_vector_error(k, n, trials, cli.seed);
        t.row(&[
            k.to_string(),
            n.to_string(),
            format!("{theory:.4}"),
            format!("{emp:.4}"),
            format!("{:.4}", (theory - emp).abs()),
        ]);
    }
    t.print();

    println!();
    let mut b = Table::new(
        "Eq. (10) — worst-case error bound E < sqrt(C(n,2)·f·πR²/(ξ·n⁴)), ξ = 1",
        &[
            "k",
            "density ρ (nodes/m²)",
            "range R (m)",
            "in-range n",
            "bound (m)",
        ],
    );
    for k in [3usize, 5, 7, 9] {
        for (rho, range) in [(0.001, 40.0), (0.002, 40.0), (0.004, 40.0), (0.002, 20.0)] {
            let n = std::f64::consts::PI * range * range * rho;
            b.row(&[
                k.to_string(),
                format!("{rho}"),
                format!("{range}"),
                format!("{n:.1}"),
                format!("{:.4}", worst_case_error_bound(k, rho, range, 1.0)),
            ]);
        }
    }
    b.print();
    println!();
    println!("Shape: each extra sample multiplies the bound by 1/√2; doubling density");
    println!("roughly halves it — the O(1/(2^((k-1)/2)·ρ·R)) scaling of eq. (10).");
}
