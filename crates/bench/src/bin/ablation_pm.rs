//! Ablation: strict vs robust path matching.
//!
//! The literal PM formulation — infinite-horizon score accumulation plus a
//! hard maximum-velocity constraint — locks onto wrong path hypotheses
//! under noisy one-shot sequences and can end up *worse* than the
//! memoryless Direct MLE (DESIGN.md §3a.3). This ablation quantifies the
//! gap between the strict rule and the windowed/robust form the suite uses
//! as its PM baseline.

use fttt::PaperParams;
use fttt_bench::{Cli, Table};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wsn_baselines::{DirectMle, PathMatching};
use wsn_parallel::{par_map, seed_for};

fn mean_error(strict: bool, n: usize, trials: usize, seed: u64) -> f64 {
    let params = PaperParams::default().with_nodes(n);
    let idx: Vec<u64> = (0..trials as u64).collect();
    let means: Vec<f64> = par_map(&idx, |_, &i| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed_for(seed, i));
        let field = params.random_field(&mut rng);
        let trace = params.random_trace(60.0, &mut rng);
        let mut pm = PathMatching::new(
            &field.deployment().positions(),
            params.rect(),
            params.cell_size,
            params.max_speed,
            params.localization_period(),
        );
        if strict {
            pm = pm.strict();
        } else {
            pm = pm.robust();
        }
        pm.track(&field, &params.sampler(), &trace, &mut rng)
            .error_stats()
            .mean
    });
    means.iter().sum::<f64>() / means.len() as f64
}

fn mle_error(n: usize, trials: usize, seed: u64) -> f64 {
    let params = PaperParams::default().with_nodes(n);
    let idx: Vec<u64> = (0..trials as u64).collect();
    let means: Vec<f64> = par_map(&idx, |_, &i| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed_for(seed, i));
        let field = params.random_field(&mut rng);
        let trace = params.random_trace(60.0, &mut rng);
        let mle = DirectMle::new(
            &field.deployment().positions(),
            params.rect(),
            params.cell_size,
        );
        mle.track(&field, &params.sampler(), &trace, &mut rng)
            .error_stats()
            .mean
    });
    means.iter().sum::<f64>() / means.len() as f64
}

fn main() {
    let cli = Cli::parse();
    let trials = cli.trials_or(10);
    let nodes = if cli.fast {
        vec![10usize, 25]
    } else {
        vec![10, 15, 20, 25, 30, 40]
    };

    let mut t = Table::new(
        format!("Ablation — strict vs robust PM (k = 5, ε = 1, {trials} trials)"),
        &["n", "strict PM (m)", "robust PM (m)", "DirectMLE (m)"],
    );
    for &n in &nodes {
        t.row(&[
            n.to_string(),
            format!("{:.2}", mean_error(true, n, trials, cli.seed)),
            format!("{:.2}", mean_error(false, n, trials, cli.seed)),
            format!("{:.2}", mle_error(n, trials, cli.seed)),
        ]);
        eprintln!("[ablation_pm] n = {n} done");
    }
    t.print();
    t.write_csv(&cli.out.join("ablation_pm.csv"));
    println!();
    println!("Expected shape: strict PM trails even Direct MLE (hypothesis lock-in);");
    println!("the windowed robust form recovers the published intent and beats MLE.");
}
