//! The complexity claims of Sections 4.2–4.4, measured.
//!
//! * Storage: faces and neighbor links grow `O(n⁴)` (bounded by the
//!   raster size), signature dimension `C(n,2) = O(n²)`.
//! * Time: Algorithm 1 is `O(n²·k)`; exhaustive matching `O(n⁴)`;
//!   heuristic matching `O(n²)`-ish per localization.

use fttt::config::PaperParams;
use fttt::matching::{match_exhaustive, match_heuristic};
use fttt::sampling::basic_sampling_vector;
use fttt_bench::{Cli, Table};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

fn main() {
    let cli = Cli::parse();
    let nodes = if cli.fast {
        vec![5usize, 10, 20]
    } else {
        vec![5, 10, 15, 20, 25, 30, 35, 40]
    };

    let mut t = Table::new(
        "Complexity scaling (cell = 1 m, 100×100 m², k = 5)",
        &[
            "n",
            "pairs",
            "faces",
            "links",
            "map (ms)",
            "map (MB)",
            "alg1 (µs)",
            "exh match (µs)",
            "heur match (µs)",
        ],
    );
    for &n in &nodes {
        let params = PaperParams::default().with_nodes(n);
        let mut rng = ChaCha8Rng::seed_from_u64(cli.seed);
        let field = params.random_field(&mut rng);
        let t0 = Instant::now();
        let map = params.face_map(&field);
        let map_ms = t0.elapsed().as_secs_f64() * 1e3;

        let sampler = params.sampler();
        let target = params.rect().center();
        let group = sampler.sample(&field, target, &mut rng);

        let reps = 50;
        let t1 = Instant::now();
        for _ in 0..reps {
            let _ = basic_sampling_vector(&group);
        }
        let alg1_us = t1.elapsed().as_secs_f64() / reps as f64 * 1e6;

        let v = basic_sampling_vector(&group);
        let t2 = Instant::now();
        for _ in 0..reps {
            let _ = match_exhaustive(&map, &v);
        }
        let exh_us = t2.elapsed().as_secs_f64() / reps as f64 * 1e6;

        let start = map.face_at(target).unwrap();
        let t3 = Instant::now();
        for _ in 0..reps {
            let _ = match_heuristic(&map, &v, start);
        }
        let heur_us = t3.elapsed().as_secs_f64() / reps as f64 * 1e6;

        t.row(&[
            n.to_string(),
            map.pair_dimension().to_string(),
            map.face_count().to_string(),
            (map.neighbor_link_count() / 2).to_string(),
            format!("{map_ms:.0}"),
            format!("{:.1}", map.memory_bytes() as f64 / (1 << 20) as f64),
            format!("{alg1_us:.1}"),
            format!("{exh_us:.1}"),
            format!("{heur_us:.1}"),
        ]);
        eprintln!("[complexity] n = {n} done");
    }
    t.print();
    t.write_csv(&cli.out.join("complexity_scaling.csv"));
    println!();
    println!("Expected shape: faces/links grow steeply with n until the raster");
    println!("saturates (every cell its own face); exhaustive matching time tracks");
    println!("faces × pairs, while the heuristic's time stays near-flat — the");
    println!("O(n⁴) → O(n²) drop of Section 4.4.2.");
}
