//! Summary matrix: every tracker in the suite on identical worlds.
//!
//! One table per metric (mean error, std), methods × node counts — the
//! one-look comparison of FTTT (basic / extended / heuristic) against the
//! paper's comparators (PM, Direct MLE) and the two extra baselines this
//! suite adds (weighted centroid, particle filter).

use fttt::PaperParams;
use fttt_bench::{trial_stats, Cli, MethodKind, Scenario, Table};

const METHODS: [MethodKind; 8] = [
    MethodKind::FtttBasic,
    MethodKind::FtttExtended,
    MethodKind::FtttHeuristic,
    MethodKind::Pm,
    MethodKind::DirectMle,
    MethodKind::Wcl,
    MethodKind::ParticleFilter,
    MethodKind::Ekf,
];

fn main() {
    let cli = Cli::parse();
    let trials = cli.trials_or(8);
    let nodes = if cli.fast {
        vec![10usize, 25]
    } else {
        vec![10, 20, 30, 40]
    };

    let mut mean_t = Table::new(
        format!("All methods — mean error (m) vs nodes (k = 5, ε = 1, {trials} trials)"),
        &["method", "n=10", "n=20", "n=30", "n=40"],
    );
    let mut std_t = Table::new(
        format!("All methods — error std (m) vs nodes (k = 5, ε = 1, {trials} trials)"),
        &["method", "n=10", "n=20", "n=30", "n=40"],
    );

    // Aggregate per method across node counts (node-major execution so
    // progress is visible).
    let mut means = vec![Vec::new(); METHODS.len()];
    let mut stds = vec![Vec::new(); METHODS.len()];
    for &n in &nodes {
        let scenario = Scenario::new(PaperParams::default().with_nodes(n));
        for (mi, &m) in METHODS.iter().enumerate() {
            let agg = trial_stats(&scenario, m, trials, cli.seed);
            means[mi].push(format!("{:.2}", agg.mean_error));
            stds[mi].push(format!("{:.2}", agg.mean_std));
        }
        eprintln!("[baselines_matrix] n = {n} done");
    }
    for (mi, &m) in METHODS.iter().enumerate() {
        let pad = |v: &Vec<String>| {
            let mut row = vec![m.label().to_string()];
            row.extend(v.iter().cloned());
            while row.len() < 5 {
                row.push("—".into());
            }
            row
        };
        mean_t.row(&pad(&means[mi]));
        std_t.row(&pad(&stds[mi]));
    }
    mean_t.print();
    println!();
    std_t.print();
    mean_t.write_csv(&cli.out.join("baselines_matrix_mean.csv"));
    std_t.write_csv(&cli.out.join("baselines_matrix_std.csv"));
    println!();
    println!("Expected shape: the FTTT family leads the sequence/centroid methods;");
    println!("the particle filter — which consumes absolute RSS and a motion model —");
    println!("is competitive when its assumptions hold, the trade the paper's");
    println!("related-work section describes.");
}
