//! Fig. 12(b): impact of the grouping sampling times k on FTTT's mean
//! error (ε = 1; n ∈ 10–40; k ∈ {3, 5, 7, 9}).

use fttt::PaperParams;
use fttt_bench::{trial_stats, Cli, MethodKind, Scenario, Table};

fn run_table(
    title: &str,
    idealized: bool,
    nodes: &[usize],
    ks: &[usize],
    trials: usize,
    seed: u64,
) -> Table {
    let mut t = Table::new(title, &["n", "k=3", "k=5", "k=7", "k=9"]);
    for &n in nodes {
        let mut cells = vec![n.to_string()];
        for &k in ks {
            let mut params = PaperParams::default()
                .with_nodes(n)
                .with_samples(k)
                .with_epsilon(1.0);
            if idealized {
                params = params.with_idealized_noise();
            }
            let scenario = Scenario::new(params);
            let agg = trial_stats(&scenario, MethodKind::FtttBasic, trials, seed);
            cells.push(format!("{:.2}", agg.mean_error));
        }
        t.row(&cells);
        eprintln!(
            "[fig12b{}] n = {n} done",
            if idealized { "/ideal" } else { "" }
        );
    }
    t
}

fn main() {
    let cli = Cli::parse();
    let trials = cli.trials_or(10);
    let ks = [3usize, 5, 7, 9];
    let nodes = if cli.fast {
        vec![10usize, 25, 40]
    } else {
        vec![10, 15, 20, 25, 30, 35, 40]
    };

    let ideal = run_table(
        &format!(
            "Fig. 12(b) — FTTT mean error, idealized sensing (paper's model; ε = 1, {trials} trials)"
        ),
        true,
        &nodes,
        &ks,
        trials,
        cli.seed,
    );
    ideal.print();
    ideal.write_csv(&cli.out.join("fig12b_sampling_idealized.csv"));

    println!();
    let gauss = run_table(
        &format!(
            "Fig. 12(b) addendum — FTTT mean error, Gaussian eq.-1 shadowing (ε = 1, {trials} trials)"
        ),
        false,
        &nodes,
        &ks,
        trials,
        cli.seed,
    );
    gauss.print();
    gauss.write_csv(&cli.out.join("fig12b_sampling_gaussian.csv"));

    println!();
    println!("Expected shape (paper, top table): more samples k ⟹ lower error at");
    println!("every n, with the k = 3 column rising as n grows. The paper's Section-5");
    println!("analysis assumes flips occur only inside each pair's uncertain band;");
    println!("the top table reproduces its Fig. 12(b) under exactly that model. The");
    println!("bottom table shows the same sweep under unbounded Gaussian shadowing,");
    println!("where the strict all-k-agree rule floods the vector with zeros and the");
    println!("k-benefit inverts — see EXPERIMENTS.md for the full discussion.");
}
