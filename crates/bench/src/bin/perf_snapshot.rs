//! Performance snapshot of the packed signature-plane kernels.
//!
//! Times face-map construction (serial / parallel / adaptive) and matching
//! throughput at n ∈ {10, 20, 40} against in-binary *scalar reference*
//! implementations of the seed's code paths:
//!
//! * build reference — a faithful port of the seed's serial
//!   `FaceMap::build`: rasterize all rows into per-cell `SignatureVector`
//!   heap allocations via [`signature_of`], then group by hashing the full
//!   vector (one clone per cell), accumulate centroids/bboxes, construct
//!   faces and run the neighbor-link pass;
//! * match reference — the seed's exhaustive scan: per face one
//!   `difference_norm_squared` plus a `1/√d²`, tracking the max similarity.
//!
//! Writes a table to stdout and a hand-formatted `BENCH_core.json` at the
//! repository root (the vendored `serde_json` is a compile-only stub).
//!
//! With `--check BASELINE.json` the binary runs the same workload but,
//! instead of writing the artifact, diffs the fresh timings against the
//! committed baseline through [`fttt_bench::gate`] and exits nonzero on
//! any regression beyond tolerance — the bench-trajectory gate.

use fttt::facemap::{signature_of, FaceMap};
use fttt::matching::{match_exhaustive, match_heuristic};
use fttt::sampling::basic_sampling_vector;
use fttt::vector::{difference_norm_squared, SamplingVector, SignatureVector};
use fttt_bench::{Cli, Table};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use std::time::Instant;
use wsn_geometry::{CellIndex, Grid, Point, Rect};
use wsn_network::{Deployment, GroupSampler, SensorField};
use wsn_signal::{uncertainty_constant, PathLossModel};

struct Setup {
    positions: Vec<Point>,
    field: Rect,
    c: f64,
    map: FaceMap,
    vector: SamplingVector,
    truth: Point,
}

/// Same world as `benches/matching.rs` / `benches/facemap_build.rs`.
fn setup(n: usize, seed: u64) -> Setup {
    let field = Rect::square(100.0);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let deployment = Deployment::random_uniform(n, field, &mut rng);
    let sensor_field = SensorField::new(deployment, 200.0);
    let c = uncertainty_constant(1.0, 4.0, 6.0);
    let positions = sensor_field.deployment().positions();
    let map = FaceMap::build(&positions, field, c, 1.0);
    let sampler = GroupSampler::new(PathLossModel::paper_default(), 5);
    let truth = Point::new(47.0, 53.0);
    let group = sampler.sample(&sensor_field, truth, &mut rng);
    Setup {
        positions,
        field,
        c,
        map,
        vector: basic_sampling_vector(&group),
        truth,
    }
}

/// Faithful port of the seed's serial `FaceMap::build` (commit db07e20):
/// one `SignatureVector` allocation per cell, `HashMap<SignatureVector, _>`
/// grouping with a `sig.clone()` per new face, centroid/bbox accumulation,
/// face construction, and the right/up neighbor-link pass. Returns the face
/// count so the optimizer cannot discard the work.
fn scalar_reference_build(positions: &[Point], field: Rect, c: f64, cell_size: f64) -> usize {
    struct RefFace {
        signature: SignatureVector,
        centroid: Point,
        cell_count: usize,
        bbox: Rect,
    }
    let grid = Grid::cover(field, cell_size);
    // Phase 1, as in the seed: rasterize every row into heap signatures
    // (all of them live at once) before any grouping happens.
    let row_sigs: Vec<Vec<SignatureVector>> = (0..grid.ny())
        .map(|iy| {
            (0..grid.nx())
                .map(|ix| signature_of(grid.center(CellIndex::new(ix, iy)), positions, c))
                .collect()
        })
        .collect();
    // Phase 2, the seed's `from_row_signatures`.
    let mut by_signature: HashMap<SignatureVector, u32> = HashMap::new();
    let mut cell_to_face = vec![0u32; grid.cell_count()];
    let mut sums: Vec<(f64, f64, usize)> = Vec::new();
    let mut boxes: Vec<Rect> = Vec::new();
    let mut signatures: Vec<SignatureVector> = Vec::new();
    for (iy, row) in row_sigs.into_iter().enumerate() {
        for (ix, sig) in row.into_iter().enumerate() {
            let idx = CellIndex::new(ix as u32, iy as u32);
            let center = grid.center(idx);
            let next_id = sums.len() as u32;
            let id = *by_signature.entry(sig.clone()).or_insert_with(|| {
                sums.push((0.0, 0.0, 0));
                boxes.push(Rect::point(center));
                signatures.push(sig);
                next_id
            });
            let s = &mut sums[id as usize];
            s.0 += center.x;
            s.1 += center.y;
            s.2 += 1;
            boxes[id as usize] = boxes[id as usize].union_point(center);
            cell_to_face[grid.linear(idx)] = id;
        }
    }
    let faces: Vec<RefFace> = signatures
        .into_iter()
        .enumerate()
        .map(|(i, signature)| {
            let (sx, sy, count) = sums[i];
            RefFace {
                signature,
                centroid: Point::new(sx / count as f64, sy / count as f64),
                cell_count: count,
                bbox: boxes[i],
            }
        })
        .collect();
    let mut neighbor_sets: Vec<Vec<u32>> = vec![Vec::new(); faces.len()];
    for lin in 0..grid.cell_count() {
        let idx = grid.from_linear(lin);
        let here = cell_to_face[lin];
        for nb in grid.neighbors4(idx) {
            if nb.ix <= idx.ix && nb.iy <= idx.iy {
                continue;
            }
            let there = cell_to_face[grid.linear(nb)];
            if there != here {
                neighbor_sets[here as usize].push(there);
                neighbor_sets[there as usize].push(here);
            }
        }
    }
    for set in &mut neighbor_sets {
        set.sort_unstable();
        set.dedup();
    }
    std::hint::black_box((
        &faces.last().map(|f| (f.centroid, f.cell_count, f.bbox)),
        &neighbor_sets,
    ));
    faces.iter().map(|f| f.signature.len().min(1)).sum()
}

/// The seed's exhaustive matcher: scalar distance and a `1/√d²` per face.
fn scalar_reference_match(map: &FaceMap, v: &SamplingVector) -> f64 {
    let mut best = f64::NEG_INFINITY;
    for f in map.faces() {
        let d2 = difference_norm_squared(v, &f.signature);
        let s = if d2 == 0.0 {
            f64::INFINITY
        } else {
            1.0 / d2.sqrt()
        };
        if s > best {
            best = s;
        }
    }
    best
}

/// One timed call of `f`, in milliseconds.
fn time_once_ms<T>(f: &mut impl FnMut() -> T) -> f64 {
    let t0 = Instant::now();
    std::hint::black_box(f());
    t0.elapsed().as_secs_f64() * 1e3
}

/// Interleaved minimum-of-rounds timing: each round times every candidate
/// once, and each candidate reports its fastest round. Back-to-back
/// averaging would hand whichever candidate runs later the machine's
/// accumulated noise (frequency scaling, neighbors on a shared box); the
/// interleaved minimum approximates each candidate's uncontended cost.
fn time_interleaved_ms<T>(rounds: usize, fs: &mut [&mut dyn FnMut() -> T]) -> Vec<f64> {
    // One untimed warmup each: page in code and data.
    for f in fs.iter_mut() {
        std::hint::black_box(f());
    }
    let mut best = vec![f64::INFINITY; fs.len()];
    for _ in 0..rounds {
        for (b, f) in best.iter_mut().zip(fs.iter_mut()) {
            *b = b.min(time_once_ms(f));
        }
    }
    best
}

struct Row {
    n: usize,
    faces: usize,
    build_ref_ms: f64,
    build_serial_ms: f64,
    build_parallel_ms: f64,
    build_adaptive_ms: f64,
    match_ref_us: f64,
    match_packed_us: f64,
    match_heur_us: f64,
}

fn main() {
    let cli = Cli::parse();
    let build_rounds = if cli.fast { 2 } else { 24 };
    let match_rounds = if cli.fast { 2 } else { 16 };
    let match_batch = if cli.fast { 10 } else { 30 };
    let threads = wsn_parallel::recommended_threads();

    let mut rows = Vec::new();
    let mut table = Table::new(
        "Packed-kernel performance snapshot (cell = 1 m, 100×100 m²)",
        &[
            "n",
            "faces",
            "build ref (ms)",
            "build serial (ms)",
            "build par (ms)",
            "build adaptive (ms)",
            "match ref (µs)",
            "match packed (µs)",
            "heur warm (µs)",
        ],
    );

    for n in [10usize, 20, 40] {
        let s = setup(n, 7);
        let build = time_interleaved_ms(
            build_rounds,
            &mut [
                &mut || {
                    scalar_reference_build(&s.positions, s.field, s.c, 1.0);
                },
                &mut || {
                    FaceMap::build(&s.positions, s.field, s.c, 1.0);
                },
                &mut || {
                    FaceMap::build_with_threads(&s.positions, s.field, s.c, 1.0, threads);
                },
                &mut || {
                    FaceMap::build_adaptive(&s.positions, s.field, s.c, 4.0, 4, threads);
                },
            ],
        );
        let (build_ref_ms, build_serial_ms, build_parallel_ms, build_adaptive_ms) =
            (build[0], build[1], build[2], build[3]);

        // Matches are microsecond-scale, so each timed round is a batch.
        let warm = s.map.face_at(s.truth).unwrap();
        let batch = |r: f64| r / match_batch as f64 * 1e3;
        let matches = time_interleaved_ms(
            match_rounds,
            &mut [
                &mut || {
                    for _ in 0..match_batch {
                        std::hint::black_box(scalar_reference_match(&s.map, &s.vector));
                    }
                },
                &mut || {
                    for _ in 0..match_batch {
                        std::hint::black_box(match_exhaustive(&s.map, &s.vector));
                    }
                },
                &mut || {
                    for _ in 0..match_batch {
                        std::hint::black_box(match_heuristic(&s.map, &s.vector, warm));
                    }
                },
            ],
        );
        let (match_ref_us, match_packed_us, match_heur_us) =
            (batch(matches[0]), batch(matches[1]), batch(matches[2]));

        table.row(&[
            n.to_string(),
            s.map.face_count().to_string(),
            format!("{build_ref_ms:.1}"),
            format!("{build_serial_ms:.1}"),
            format!("{build_parallel_ms:.1}"),
            format!("{build_adaptive_ms:.1}"),
            format!("{match_ref_us:.1}"),
            format!("{match_packed_us:.1}"),
            format!("{match_heur_us:.1}"),
        ]);
        rows.push(Row {
            n,
            faces: s.map.face_count(),
            build_ref_ms,
            build_serial_ms,
            build_parallel_ms,
            build_adaptive_ms,
            match_ref_us,
            match_packed_us,
            match_heur_us,
        });
        eprintln!("[perf_snapshot] n = {n} done");
    }

    table.print();
    println!();
    for r in &rows {
        println!(
            "n = {:>2}: build speedup (scalar ref / packed serial) = {:.2}x, \
             match speedup (scalar ref / packed) = {:.2}x",
            r.n,
            r.build_ref_ms / r.build_serial_ms,
            r.match_ref_us / r.match_packed_us,
        );
    }

    // The timing loops above ran with NO telemetry sink installed — the
    // enabled-check must stay effectively free on the hot paths. A single
    // instrumented pass afterwards populates the snapshot embedded in the
    // artifact without contaminating the timings.
    let registry = std::sync::Arc::new(wsn_telemetry::Registry::new());
    wsn_telemetry::install(std::sync::Arc::clone(&registry));
    for n in [10usize, 20, 40] {
        let s = setup(n, 7);
        FaceMap::build_with_threads(&s.positions, s.field, s.c, 1.0, threads);
        let warm = s.map.face_at(s.truth).unwrap();
        std::hint::black_box(match_exhaustive(&s.map, &s.vector));
        std::hint::black_box(match_heuristic(&s.map, &s.vector, warm));
    }
    wsn_telemetry::uninstall();
    let metrics = registry.snapshot();

    let json = render_json(&rows, threads, cli.seed, &metrics);
    if let Some(baseline_path) = &cli.check {
        // Regression-gate mode: compare against the committed baseline and
        // leave BENCH_core.json untouched (a gate run must not move its
        // own goalposts).
        std::process::exit(run_gate(&json, baseline_path));
    }
    let path = "BENCH_core.json";
    std::fs::write(path, json).expect("write BENCH_core.json");
    println!("\nwrote {path}");
}

/// Diffs the rendered fresh run against the baseline at `path`; returns
/// the process exit code (0 pass, 1 regression or unreadable baseline).
fn run_gate(fresh_json: &str, path: &std::path::Path) -> i32 {
    let baseline_text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("[gate] cannot read baseline {}: {e}", path.display());
            return 1;
        }
    };
    let baseline = match wsn_telemetry::json::JsonValue::parse(&baseline_text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("[gate] baseline {} is not valid JSON: {e}", path.display());
            return 1;
        }
    };
    let fresh = wsn_telemetry::json::JsonValue::parse(fresh_json)
        .expect("perf_snapshot renders valid JSON");
    match fttt_bench::gate::check_core(&fresh, &baseline) {
        Err(e) => {
            eprintln!("[gate] structural mismatch: {e}");
            1
        }
        Ok(violations) if violations.is_empty() => {
            println!(
                "\n[gate] PASS — all gated metrics within tolerance of {}",
                path.display()
            );
            0
        }
        Ok(violations) => {
            eprintln!(
                "\n[gate] FAIL — {} regression(s) vs {}:",
                violations.len(),
                path.display()
            );
            for v in &violations {
                eprintln!("[gate]   {v}");
            }
            1
        }
    }
}

/// Hand-formatted JSON: the vendored `serde_json` is a compile-only stub.
/// The telemetry snapshot comes from a separate instrumented pass (the
/// timed loops run sink-free) and is embedded under `"metrics"`.
fn render_json(
    rows: &[Row],
    threads: usize,
    seed: u64,
    metrics: &wsn_telemetry::Snapshot,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"perf_snapshot\",\n");
    out.push_str("  \"config\": {\n");
    out.push_str("    \"field\": \"100x100 m\",\n");
    out.push_str("    \"cell_size_m\": 1.0,\n");
    out.push_str("    \"adaptive\": {\"coarse_cell_m\": 4.0, \"refine\": 4},\n");
    out.push_str(&format!("    \"threads\": {threads},\n"));
    out.push_str(&format!("    \"seed\": {seed},\n"));
    out.push_str(
        "    \"reference\": \"in-binary scalar seed paths: faithful port of \
         the seed serial FaceMap::build (per-cell SignatureVector, full-vector \
         hash grouping, centroid/neighbor passes) and the per-face \
         difference_norm_squared + 1/sqrt exhaustive scan\"\n",
    );
    out.push_str("  },\n");
    out.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"n\": {},\n", r.n));
        out.push_str(&format!("      \"faces\": {},\n", r.faces));
        out.push_str("      \"build_ms\": {\n");
        out.push_str(&format!(
            "        \"scalar_reference\": {:.3},\n",
            r.build_ref_ms
        ));
        out.push_str(&format!(
            "        \"packed_serial\": {:.3},\n",
            r.build_serial_ms
        ));
        out.push_str(&format!(
            "        \"packed_parallel\": {:.3},\n",
            r.build_parallel_ms
        ));
        out.push_str(&format!(
            "        \"packed_adaptive\": {:.3}\n",
            r.build_adaptive_ms
        ));
        out.push_str("      },\n");
        out.push_str("      \"match_us\": {\n");
        out.push_str(&format!(
            "        \"scalar_reference\": {:.3},\n",
            r.match_ref_us
        ));
        out.push_str(&format!(
            "        \"packed_exhaustive\": {:.3},\n",
            r.match_packed_us
        ));
        out.push_str(&format!(
            "        \"heuristic_warm\": {:.3}\n",
            r.match_heur_us
        ));
        out.push_str("      },\n");
        out.push_str("      \"speedup\": {\n");
        out.push_str(&format!(
            "        \"build_serial\": {:.3},\n",
            r.build_ref_ms / r.build_serial_ms
        ));
        out.push_str(&format!(
            "        \"match_exhaustive\": {:.3}\n",
            r.match_ref_us / r.match_packed_us
        ));
        out.push_str("      }\n");
        out.push_str(if i + 1 == rows.len() {
            "    }\n"
        } else {
            "    },\n"
        });
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"metrics\": {}\n",
        metrics.to_json_indented("  ")
    ));
    out.push_str("}\n");
    out
}
