//! Performance snapshot of the packed signature-plane kernels.
//!
//! Times face-map construction (serial / parallel / adaptive) and matching
//! throughput at n ∈ {10, 20, 40} against in-binary *scalar reference*
//! implementations of the seed's code paths, then match throughput alone
//! at the scale rows n ∈ {100, 200} (cell 0.5 m, ~4×10⁴ faces each) where
//! the coarse-to-fine chunk index has to deliver sublinear full-accuracy
//! matching — `indexed` (steady-state mean) and `indexed_p99` (worst
//! percentile over a 10×10 grid of probe targets) are gated alongside the
//! linear scan:
//!
//! * build reference — a faithful port of the seed's serial
//!   `FaceMap::build`: rasterize all rows into per-cell `SignatureVector`
//!   heap allocations via [`signature_of`], then group by hashing the full
//!   vector (one clone per cell), accumulate centroids/bboxes, construct
//!   faces and run the neighbor-link pass;
//! * match reference — the seed's exhaustive scan: per face one
//!   `difference_norm_squared` plus a `1/√d²`, tracking the max similarity.
//!
//! A final `map_repair_us` row times the live-churn path at n = 40,
//! cell 4 m: the median single-node death + revive repair, incremental
//! (gated sub-millisecond) against the rebuild-per-event control
//! (ungated — it normalizes the speedup story). Repair cost scales
//! linearly with grid cell count, so the gated point is the finest
//! n = 40 geometry that holds the interactive sub-ms budget with margin
//! on a shared box; DESIGN.md records the full cell-size scaling.
//!
//! Writes a table to stdout and a hand-formatted `BENCH_core.json` at the
//! repository root (the vendored `serde_json` is a compile-only stub).
//!
//! With `--check BASELINE.json` the binary runs the same workload but,
//! instead of writing the artifact, diffs the fresh timings against the
//! committed baseline through [`fttt_bench::gate`] and exits nonzero on
//! any regression beyond tolerance — the bench-trajectory gate.

use fttt::facemap::{signature_of, FaceMap, RepairMode};
use fttt::matching::{match_exhaustive, match_heuristic, match_indexed};
use fttt::sampling::basic_sampling_vector;
use fttt::vector::{difference_norm_squared, SamplingVector, SignatureVector};
use fttt_bench::{Cli, Table};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use std::time::Instant;
use wsn_geometry::{CellIndex, Grid, Point, Rect};
use wsn_network::{Deployment, GroupSampler, SensorField};
use wsn_signal::{uncertainty_constant, PathLossModel};

struct Setup {
    positions: Vec<Point>,
    field: Rect,
    c: f64,
    cell: f64,
    map: FaceMap,
    vector: SamplingVector,
    truth: Point,
    /// Sampling vectors from a 10×10 grid of probe targets — the p99
    /// population (one steady-state query per distinct target position).
    probes: Vec<SamplingVector>,
}

/// Same world as `benches/matching.rs` / `benches/facemap_build.rs`.
fn setup(n: usize, seed: u64, cell: f64) -> Setup {
    let field = Rect::square(100.0);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let deployment = Deployment::random_uniform(n, field, &mut rng);
    let sensor_field = SensorField::new(deployment, 200.0);
    let c = uncertainty_constant(1.0, 4.0, 6.0);
    let positions = sensor_field.deployment().positions();
    let map = FaceMap::build(&positions, field, c, cell);
    let sampler = GroupSampler::new(PathLossModel::paper_default(), 5);
    let truth = Point::new(47.0, 53.0);
    let group = sampler.sample(&sensor_field, truth, &mut rng);
    let probes = (0..10)
        .flat_map(|i| {
            (0..10).map(move |j| Point::new(5.0 + 10.0 * i as f64, 5.0 + 10.0 * j as f64))
        })
        .map(|p| basic_sampling_vector(&sampler.sample(&sensor_field, p, &mut rng)))
        .collect();
    Setup {
        positions,
        field,
        c,
        cell,
        map,
        vector: basic_sampling_vector(&group),
        truth,
        probes,
    }
}

/// Faithful port of the seed's serial `FaceMap::build` (commit db07e20):
/// one `SignatureVector` allocation per cell, `HashMap<SignatureVector, _>`
/// grouping with a `sig.clone()` per new face, centroid/bbox accumulation,
/// face construction, and the right/up neighbor-link pass. Returns the face
/// count so the optimizer cannot discard the work.
fn scalar_reference_build(positions: &[Point], field: Rect, c: f64, cell_size: f64) -> usize {
    struct RefFace {
        signature: SignatureVector,
        centroid: Point,
        cell_count: usize,
        bbox: Rect,
    }
    let grid = Grid::cover(field, cell_size);
    // Phase 1, as in the seed: rasterize every row into heap signatures
    // (all of them live at once) before any grouping happens.
    let row_sigs: Vec<Vec<SignatureVector>> = (0..grid.ny())
        .map(|iy| {
            (0..grid.nx())
                .map(|ix| signature_of(grid.center(CellIndex::new(ix, iy)), positions, c))
                .collect()
        })
        .collect();
    // Phase 2, the seed's `from_row_signatures`.
    let mut by_signature: HashMap<SignatureVector, u32> = HashMap::new();
    let mut cell_to_face = vec![0u32; grid.cell_count()];
    let mut sums: Vec<(f64, f64, usize)> = Vec::new();
    let mut boxes: Vec<Rect> = Vec::new();
    let mut signatures: Vec<SignatureVector> = Vec::new();
    for (iy, row) in row_sigs.into_iter().enumerate() {
        for (ix, sig) in row.into_iter().enumerate() {
            let idx = CellIndex::new(ix as u32, iy as u32);
            let center = grid.center(idx);
            let next_id = sums.len() as u32;
            let id = *by_signature.entry(sig.clone()).or_insert_with(|| {
                sums.push((0.0, 0.0, 0));
                boxes.push(Rect::point(center));
                signatures.push(sig);
                next_id
            });
            let s = &mut sums[id as usize];
            s.0 += center.x;
            s.1 += center.y;
            s.2 += 1;
            boxes[id as usize] = boxes[id as usize].union_point(center);
            cell_to_face[grid.linear(idx)] = id;
        }
    }
    let faces: Vec<RefFace> = signatures
        .into_iter()
        .enumerate()
        .map(|(i, signature)| {
            let (sx, sy, count) = sums[i];
            RefFace {
                signature,
                centroid: Point::new(sx / count as f64, sy / count as f64),
                cell_count: count,
                bbox: boxes[i],
            }
        })
        .collect();
    let mut neighbor_sets: Vec<Vec<u32>> = vec![Vec::new(); faces.len()];
    for lin in 0..grid.cell_count() {
        let idx = grid.from_linear(lin);
        let here = cell_to_face[lin];
        for nb in grid.neighbors4(idx) {
            if nb.ix <= idx.ix && nb.iy <= idx.iy {
                continue;
            }
            let there = cell_to_face[grid.linear(nb)];
            if there != here {
                neighbor_sets[here as usize].push(there);
                neighbor_sets[there as usize].push(here);
            }
        }
    }
    for set in &mut neighbor_sets {
        set.sort_unstable();
        set.dedup();
    }
    std::hint::black_box((
        &faces.last().map(|f| (f.centroid, f.cell_count, f.bbox)),
        &neighbor_sets,
    ));
    faces.iter().map(|f| f.signature.len().min(1)).sum()
}

/// The seed's exhaustive matcher: scalar distance and a `1/√d²` per face.
fn scalar_reference_match(map: &FaceMap, v: &SamplingVector) -> f64 {
    let mut best = f64::NEG_INFINITY;
    for f in map.faces() {
        let d2 = difference_norm_squared(v, &f.signature);
        let s = if d2 == 0.0 {
            f64::INFINITY
        } else {
            1.0 / d2.sqrt()
        };
        if s > best {
            best = s;
        }
    }
    best
}

/// One timed call of `f`, in milliseconds.
fn time_once_ms<T>(f: &mut impl FnMut() -> T) -> f64 {
    let t0 = Instant::now();
    std::hint::black_box(f());
    t0.elapsed().as_secs_f64() * 1e3
}

/// Interleaved minimum-of-rounds timing: each round times every candidate
/// once, and each candidate reports its fastest round. Back-to-back
/// averaging would hand whichever candidate runs later the machine's
/// accumulated noise (frequency scaling, neighbors on a shared box); the
/// interleaved minimum approximates each candidate's uncontended cost.
fn time_interleaved_ms<T>(rounds: usize, fs: &mut [&mut dyn FnMut() -> T]) -> Vec<f64> {
    // One untimed warmup each: page in code and data.
    for f in fs.iter_mut() {
        std::hint::black_box(f());
    }
    let mut best = vec![f64::INFINITY; fs.len()];
    for _ in 0..rounds {
        for (b, f) in best.iter_mut().zip(fs.iter_mut()) {
            *b = b.min(time_once_ms(f));
        }
    }
    best
}

/// Build timings, present only on the full (small-n) rows — the scale
/// rows build once, untimed, and gate match throughput alone.
struct BuildCols {
    ref_ms: f64,
    serial_ms: f64,
    parallel_ms: f64,
    adaptive_ms: f64,
}

struct Row {
    n: usize,
    faces: usize,
    cell_m: f64,
    build: Option<BuildCols>,
    match_ref_us: Option<f64>,
    match_packed_us: f64,
    match_heur_us: f64,
    match_indexed_us: f64,
    match_indexed_p99_us: f64,
}

/// Per-probe minimum-of-rounds single-match timings, 99th percentile, µs.
/// Each probe is timed individually (no batching) because a percentile of
/// batch means would launder slow outliers away — the p99 target is about
/// the worst realistic query, not the average one.
fn indexed_p99_us(map: &FaceMap, probes: &[SamplingVector], rounds: usize) -> f64 {
    for v in probes {
        std::hint::black_box(match_indexed(map, v));
    }
    let mut per = vec![f64::INFINITY; probes.len()];
    for _ in 0..rounds.max(1) {
        for (best, v) in per.iter_mut().zip(probes) {
            let t0 = Instant::now();
            std::hint::black_box(match_indexed(map, v));
            *best = best.min(t0.elapsed().as_secs_f64() * 1e6);
        }
    }
    per.sort_unstable_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    let idx = ((per.len() as f64) * 0.99).ceil() as usize;
    per[idx.saturating_sub(1).min(per.len() - 1)]
}

/// The `map_repair_us` row: live-churn repair latency at the campaign
/// geometry.
struct RepairRow {
    n: usize,
    faces: usize,
    cell_m: f64,
    /// Repair events behind each median (death + revive per node).
    events: usize,
    incremental_median_us: f64,
    rebuild_median_us: f64,
}

/// Median best-of-rounds latency of one single-node repair under `mode`.
///
/// Each event kills a node and then revives it, timing the two repairs
/// separately — the map returns to its pre-event content (incremental
/// repair is bit-identical to a fresh build of the live set), so events
/// are independent and the map never drifts across rounds.
fn repair_median_us(map: &mut FaceMap, nodes: usize, mode: RepairMode, rounds: usize) -> f64 {
    // One untimed warmup pass: page in the repair scratch and planes.
    for node in 0..nodes {
        std::hint::black_box(map.kill_node(node, mode));
        std::hint::black_box(map.revive_node(node, mode));
    }
    let mut best = vec![f64::INFINITY; 2 * nodes];
    for _ in 0..rounds.max(1) {
        for node in 0..nodes {
            let t0 = Instant::now();
            std::hint::black_box(map.kill_node(node, mode));
            best[2 * node] = best[2 * node].min(t0.elapsed().as_secs_f64() * 1e6);
            let t0 = Instant::now();
            std::hint::black_box(map.revive_node(node, mode));
            best[2 * node + 1] = best[2 * node + 1].min(t0.elapsed().as_secs_f64() * 1e6);
        }
    }
    best.sort_unstable_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
    best[best.len() / 2]
}

fn main() {
    let cli = Cli::parse();
    let build_rounds = if cli.fast { 2 } else { 24 };
    let match_rounds = if cli.fast { 2 } else { 16 };
    let match_batch = if cli.fast { 10 } else { 30 };
    // Scale rows: a single linear scan is tens of milliseconds, so small
    // batches and few rounds keep the snapshot's wall time sane.
    let big_match_rounds = if cli.fast { 2 } else { 6 };
    let big_match_batch = if cli.fast { 1 } else { 3 };
    let p99_rounds = if cli.fast { 1 } else { 3 };
    let threads = wsn_parallel::recommended_threads();

    let mut rows = Vec::new();
    let mut table = Table::new(
        "Packed-kernel performance snapshot (100×100 m²; n ≤ 40 @ cell 1 m, n ≥ 100 @ cell 0.5 m)",
        &[
            "n",
            "faces",
            "build ref (ms)",
            "build serial (ms)",
            "build par (ms)",
            "build adaptive (ms)",
            "match ref (µs)",
            "match packed (µs)",
            "heur warm (µs)",
            "match idx (µs)",
            "idx p99 (µs)",
        ],
    );

    for n in [10usize, 20, 40] {
        let s = setup(n, 7, 1.0);
        let build = time_interleaved_ms(
            build_rounds,
            &mut [
                &mut || {
                    scalar_reference_build(&s.positions, s.field, s.c, s.cell);
                },
                &mut || {
                    FaceMap::build(&s.positions, s.field, s.c, s.cell);
                },
                &mut || {
                    FaceMap::build_with_threads(&s.positions, s.field, s.c, s.cell, threads);
                },
                &mut || {
                    FaceMap::build_adaptive(&s.positions, s.field, s.c, 4.0, 4, threads);
                },
            ],
        );
        let build_cols = BuildCols {
            ref_ms: build[0],
            serial_ms: build[1],
            parallel_ms: build[2],
            adaptive_ms: build[3],
        };

        // Matches are microsecond-scale, so each timed round is a batch.
        let warm = s.map.face_at(s.truth).unwrap();
        let batch = |r: f64| r / match_batch as f64 * 1e3;
        let matches = time_interleaved_ms(
            match_rounds,
            &mut [
                &mut || {
                    for _ in 0..match_batch {
                        std::hint::black_box(scalar_reference_match(&s.map, &s.vector));
                    }
                },
                &mut || {
                    for _ in 0..match_batch {
                        std::hint::black_box(match_exhaustive(&s.map, &s.vector));
                    }
                },
                &mut || {
                    for _ in 0..match_batch {
                        std::hint::black_box(match_heuristic(&s.map, &s.vector, warm));
                    }
                },
                &mut || {
                    for _ in 0..match_batch {
                        std::hint::black_box(match_indexed(&s.map, &s.vector));
                    }
                },
            ],
        );
        let (match_ref_us, match_packed_us, match_heur_us, match_indexed_us) = (
            batch(matches[0]),
            batch(matches[1]),
            batch(matches[2]),
            batch(matches[3]),
        );
        let match_indexed_p99_us = indexed_p99_us(&s.map, &s.probes, p99_rounds);

        table.row(&[
            n.to_string(),
            s.map.face_count().to_string(),
            format!("{:.1}", build_cols.ref_ms),
            format!("{:.1}", build_cols.serial_ms),
            format!("{:.1}", build_cols.parallel_ms),
            format!("{:.1}", build_cols.adaptive_ms),
            format!("{match_ref_us:.1}"),
            format!("{match_packed_us:.1}"),
            format!("{match_heur_us:.1}"),
            format!("{match_indexed_us:.1}"),
            format!("{match_indexed_p99_us:.1}"),
        ]);
        rows.push(Row {
            n,
            faces: s.map.face_count(),
            cell_m: s.cell,
            build: Some(build_cols),
            match_ref_us: Some(match_ref_us),
            match_packed_us,
            match_heur_us,
            match_indexed_us,
            match_indexed_p99_us,
        });
        eprintln!("[perf_snapshot] n = {n} done");
    }

    // Scale rows: ~4×10⁴ faces each (~10⁵ combined). The build runs once,
    // untimed; only match throughput is recorded and gated, with the
    // chunk index expected to hold exhaustive-quality matching under 1 ms
    // at the 99th percentile.
    for n in [100usize, 200] {
        let s = setup(n, 7, 0.5);
        let warm = s.map.face_at(s.truth).unwrap();
        let batch = |r: f64| r / big_match_batch as f64 * 1e3;
        let matches = time_interleaved_ms(
            big_match_rounds,
            &mut [
                &mut || {
                    for _ in 0..big_match_batch {
                        std::hint::black_box(match_exhaustive(&s.map, &s.vector));
                    }
                },
                &mut || {
                    for _ in 0..big_match_batch {
                        std::hint::black_box(match_heuristic(&s.map, &s.vector, warm));
                    }
                },
                &mut || {
                    for _ in 0..big_match_batch {
                        std::hint::black_box(match_indexed(&s.map, &s.vector));
                    }
                },
            ],
        );
        let (match_packed_us, match_heur_us, match_indexed_us) =
            (batch(matches[0]), batch(matches[1]), batch(matches[2]));
        let match_indexed_p99_us = indexed_p99_us(&s.map, &s.probes, p99_rounds);

        table.row(&[
            n.to_string(),
            s.map.face_count().to_string(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            format!("{match_packed_us:.1}"),
            format!("{match_heur_us:.1}"),
            format!("{match_indexed_us:.1}"),
            format!("{match_indexed_p99_us:.1}"),
        ]);
        rows.push(Row {
            n,
            faces: s.map.face_count(),
            cell_m: s.cell,
            build: None,
            match_ref_us: None,
            match_packed_us,
            match_heur_us,
            match_indexed_us,
            match_indexed_p99_us,
        });
        eprintln!("[perf_snapshot] n = {n} done");
    }

    // The live-churn row: median single-node repair at n = 40, cell 4 m
    // (625 cells — the finest n = 40 grid that keeps the median repair
    // sub-millisecond with real margin; cost is linear in cell count).
    // Runs after the timed tables so the repair workload never
    // interleaves with the build/match candidates.
    let repair_rounds = if cli.fast { 1 } else { 5 };
    let rebuild_rounds = if cli.fast { 1 } else { 2 };
    let repair = {
        let mut s = setup(40, 7, 4.0);
        let faces = s.map.face_count();
        let incremental = repair_median_us(&mut s.map, 40, RepairMode::Incremental, repair_rounds);
        let rebuild = repair_median_us(&mut s.map, 40, RepairMode::Rebuild, rebuild_rounds);
        eprintln!("[perf_snapshot] map repair done");
        RepairRow {
            n: 40,
            faces,
            cell_m: 4.0,
            events: 2 * 40,
            incremental_median_us: incremental,
            rebuild_median_us: rebuild,
        }
    };

    table.print();
    println!();
    for r in &rows {
        if let (Some(b), Some(match_ref)) = (&r.build, r.match_ref_us) {
            println!(
                "n = {:>3}: build speedup (scalar ref / packed serial) = {:.2}x, \
                 match speedup (scalar ref / packed) = {:.2}x",
                r.n,
                b.ref_ms / b.serial_ms,
                match_ref / r.match_packed_us,
            );
        } else {
            println!(
                "n = {:>3}: indexed speedup (packed scan / indexed) = {:.2}x, \
                 indexed p99 = {:.1} µs",
                r.n,
                r.match_packed_us / r.match_indexed_us,
                r.match_indexed_p99_us,
            );
        }
    }
    println!(
        "map repair @ n = {}, cell {} m ({} events): incremental median = {:.1} µs, \
         rebuild-per-event median = {:.1} µs ({:.1}x)",
        repair.n,
        repair.cell_m,
        repair.events,
        repair.incremental_median_us,
        repair.rebuild_median_us,
        repair.rebuild_median_us / repair.incremental_median_us,
    );

    // The timing loops above ran with NO telemetry sink installed — the
    // enabled-check must stay effectively free on the hot paths. A single
    // instrumented pass afterwards populates the snapshot embedded in the
    // artifact without contaminating the timings.
    let registry = std::sync::Arc::new(wsn_telemetry::Registry::new());
    wsn_telemetry::install(std::sync::Arc::clone(&registry));
    for n in [10usize, 20, 40] {
        let s = setup(n, 7, 1.0);
        FaceMap::build_with_threads(&s.positions, s.field, s.c, s.cell, threads);
        let warm = s.map.face_at(s.truth).unwrap();
        std::hint::black_box(match_exhaustive(&s.map, &s.vector));
        std::hint::black_box(match_heuristic(&s.map, &s.vector, warm));
        std::hint::black_box(match_indexed(&s.map, &s.vector));
    }
    {
        // One instrumented death + revive so the `fttt.map.repair.*`
        // counters land in the embedded metrics snapshot.
        let mut s = setup(40, 7, 4.0);
        std::hint::black_box(s.map.kill_node(7, RepairMode::Incremental));
        std::hint::black_box(s.map.revive_node(7, RepairMode::Incremental));
    }
    wsn_telemetry::uninstall();
    let metrics = registry.snapshot();

    let json = render_json(&rows, &repair, threads, cli.seed, &metrics);
    if let Some(baseline_path) = &cli.check {
        // Regression-gate mode: compare against the committed baseline and
        // leave BENCH_core.json untouched (a gate run must not move its
        // own goalposts).
        std::process::exit(run_gate(&json, baseline_path));
    }
    let path = "BENCH_core.json";
    std::fs::write(path, json).expect("write BENCH_core.json");
    println!("\nwrote {path}");
}

/// Diffs the rendered fresh run against the baseline at `path`; returns
/// the process exit code (0 pass, 1 regression or unreadable baseline).
fn run_gate(fresh_json: &str, path: &std::path::Path) -> i32 {
    let baseline_text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("[gate] cannot read baseline {}: {e}", path.display());
            return 1;
        }
    };
    let baseline = match wsn_telemetry::json::JsonValue::parse(&baseline_text) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("[gate] baseline {} is not valid JSON: {e}", path.display());
            return 1;
        }
    };
    let fresh = wsn_telemetry::json::JsonValue::parse(fresh_json)
        .expect("perf_snapshot renders valid JSON");
    match fttt_bench::gate::check_core(&fresh, &baseline) {
        Err(e) => {
            eprintln!("[gate] structural mismatch: {e}");
            1
        }
        Ok(violations) if violations.is_empty() => {
            println!(
                "\n[gate] PASS — all gated metrics within tolerance of {}",
                path.display()
            );
            0
        }
        Ok(violations) => {
            eprintln!(
                "\n[gate] FAIL — {} regression(s) vs {}:",
                violations.len(),
                path.display()
            );
            for v in &violations {
                eprintln!("[gate]   {v}");
            }
            1
        }
    }
}

/// Hand-formatted JSON: the vendored `serde_json` is a compile-only stub.
/// The telemetry snapshot comes from a separate instrumented pass (the
/// timed loops run sink-free) and is embedded under `"metrics"`.
fn render_json(
    rows: &[Row],
    repair: &RepairRow,
    threads: usize,
    seed: u64,
    metrics: &wsn_telemetry::Snapshot,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"perf_snapshot\",\n");
    out.push_str("  \"config\": {\n");
    out.push_str("    \"field\": \"100x100 m\",\n");
    out.push_str("    \"cell_size_m\": \"per row (`cell_m`): 1.0 for n <= 40, 0.5 for the match-only scale rows\",\n");
    out.push_str("    \"adaptive\": {\"coarse_cell_m\": 4.0, \"refine\": 4},\n");
    out.push_str(&format!("    \"threads\": {threads},\n"));
    out.push_str(&format!("    \"seed\": {seed},\n"));
    out.push_str(
        "    \"reference\": \"in-binary scalar seed paths: faithful port of \
         the seed serial FaceMap::build (per-cell SignatureVector, full-vector \
         hash grouping, centroid/neighbor passes) and the per-face \
         difference_norm_squared + 1/sqrt exhaustive scan\"\n",
    );
    out.push_str("  },\n");
    out.push_str("  \"results\": [\n");
    for r in rows {
        out.push_str("    {\n");
        out.push_str(&format!("      \"n\": {},\n", r.n));
        out.push_str(&format!("      \"faces\": {},\n", r.faces));
        out.push_str(&format!("      \"cell_m\": {},\n", r.cell_m));
        // The build and speedup groups exist only on the full rows; the
        // gate is presence-driven, so match-only scale rows gate match
        // metrics alone.
        if let Some(b) = &r.build {
            out.push_str("      \"build_ms\": {\n");
            out.push_str(&format!("        \"scalar_reference\": {:.3},\n", b.ref_ms));
            out.push_str(&format!("        \"packed_serial\": {:.3},\n", b.serial_ms));
            out.push_str(&format!(
                "        \"packed_parallel\": {:.3},\n",
                b.parallel_ms
            ));
            out.push_str(&format!(
                "        \"packed_adaptive\": {:.3}\n",
                b.adaptive_ms
            ));
            out.push_str("      },\n");
        }
        out.push_str("      \"match_us\": {\n");
        if let Some(match_ref) = r.match_ref_us {
            out.push_str(&format!("        \"scalar_reference\": {match_ref:.3},\n"));
        }
        out.push_str(&format!(
            "        \"packed_exhaustive\": {:.3},\n",
            r.match_packed_us
        ));
        out.push_str(&format!(
            "        \"heuristic_warm\": {:.3},\n",
            r.match_heur_us
        ));
        out.push_str(&format!(
            "        \"indexed\": {:.3},\n",
            r.match_indexed_us
        ));
        out.push_str(&format!(
            "        \"indexed_p99\": {:.3}\n",
            r.match_indexed_p99_us
        ));
        out.push_str("      }");
        if let (Some(b), Some(match_ref)) = (&r.build, r.match_ref_us) {
            out.push_str(",\n      \"speedup\": {\n");
            out.push_str(&format!(
                "        \"build_serial\": {:.3},\n",
                b.ref_ms / b.serial_ms
            ));
            out.push_str(&format!(
                "        \"match_exhaustive\": {:.3},\n",
                match_ref / r.match_packed_us
            ));
            out.push_str(&format!(
                "        \"match_indexed\": {:.3}\n",
                match_ref / r.match_indexed_us
            ));
            out.push_str("      }\n");
        } else {
            out.push('\n');
        }
        out.push_str("    },\n");
    }
    // The repair row closes the results array: same shape as the others
    // (keyed by n + cell_m) with a single `map_repair_us` group, so the
    // gate's presence-driven matching gates exactly its metrics.
    out.push_str("    {\n");
    out.push_str(&format!("      \"n\": {},\n", repair.n));
    out.push_str(&format!("      \"faces\": {},\n", repair.faces));
    out.push_str(&format!("      \"cell_m\": {},\n", repair.cell_m));
    out.push_str("      \"map_repair_us\": {\n");
    out.push_str(&format!(
        "        \"incremental_median\": {:.3},\n",
        repair.incremental_median_us
    ));
    out.push_str(&format!(
        "        \"rebuild_median\": {:.3},\n",
        repair.rebuild_median_us
    ));
    out.push_str(&format!("        \"events\": {}\n", repair.events));
    out.push_str("      }\n");
    out.push_str("    }\n");
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"metrics\": {}\n",
        metrics.to_json_indented("  ")
    ));
    out.push_str("}\n");
    out
}
