//! Ablation: strategy fault tolerance (Section 4.4.3).
//!
//! Sweeps the per-localization node-failure probability and compares FTTT
//! (whose eq.-6 rule fills missing pairs) against the baselines on the
//! same failing networks.

use fttt::PaperParams;
use fttt_bench::{trial_stats, Cli, MethodKind, Scenario, Table};
use wsn_network::FaultModel;

fn main() {
    let cli = Cli::parse();
    let trials = cli.trials_or(10);
    let probs = if cli.fast {
        vec![0.0, 0.3]
    } else {
        vec![0.0, 0.1, 0.2, 0.3, 0.4, 0.5]
    };

    let mut t = Table::new(
        format!("Ablation — node-failure probability (n = 15, k = 5, ε = 1, {trials} trials)"),
        &[
            "P(fail)",
            "FTTT (m)",
            "FTTT-ext (m)",
            "PM (m)",
            "DirectMLE (m)",
            "WCL (m)",
        ],
    );
    for &p in &probs {
        let scenario = Scenario::new(PaperParams::default().with_nodes(15))
            .with_fault(FaultModel::with_node_failure(p));
        let cells: Vec<String> = [
            MethodKind::FtttBasic,
            MethodKind::FtttExtended,
            MethodKind::Pm,
            MethodKind::DirectMle,
            MethodKind::Wcl,
        ]
        .iter()
        .map(|&m| {
            format!(
                "{:.2}",
                trial_stats(&scenario, m, trials, cli.seed).mean_error
            )
        })
        .collect();
        t.row(&[
            format!("{p:.1}"),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
            cells[3].clone(),
            cells[4].clone(),
        ]);
        eprintln!("[ablation_faults] p = {p} done");
    }
    t.print();
    t.write_csv(&cli.out.join("ablation_faults.csv"));
    println!();
    println!("Expected shape: every method degrades as nodes fail. FTTT's eq.-6");
    println!("fill keeps the degradation graceful (no dimension collapse, estimates");
    println!("stay in-field); PM's temporal smoothing makes it the flattest curve at");
    println!("extreme failure rates, while the extended FTTT stays best in the");
    println!("moderate-failure regime the rule was designed for.");
}
