//! Ablation: exhaustive vs heuristic matching (Section 4.4.2).
//!
//! The paper claims Algorithm 2 (neighbor-link hill climbing, warm-started
//! from the previous localization) drops matching from O(n⁴) to O(n²)
//! without hurting accuracy. This ablation measures both sides: accuracy
//! parity and the per-localization similarity evaluations.

use fttt::PaperParams;
use fttt_bench::{trial_stats, Cli, MethodKind, Scenario, Table};

fn main() {
    let cli = Cli::parse();
    let trials = cli.trials_or(10);
    let nodes = if cli.fast {
        vec![10usize, 25]
    } else {
        vec![10, 15, 20, 25, 30, 40]
    };

    let mut t = Table::new(
        format!("Ablation — exhaustive vs heuristic matching (k = 5, ε = 1, {trials} trials)"),
        &[
            "n",
            "exh err (m)",
            "heur err (m)",
            "exh evals/loc",
            "heur evals/loc",
            "speedup ×",
        ],
    );
    for &n in &nodes {
        let scenario = Scenario::new(
            PaperParams::default()
                .with_nodes(n)
                .with_samples(5)
                .with_epsilon(1.0),
        );
        let exh = trial_stats(&scenario, MethodKind::FtttBasic, trials, cli.seed);
        let heur = trial_stats(&scenario, MethodKind::FtttHeuristic, trials, cli.seed);
        t.row(&[
            n.to_string(),
            format!("{:.2}", exh.mean_error),
            format!("{:.2}", heur.mean_error),
            format!("{:.0}", exh.mean_evaluated),
            format!("{:.0}", heur.mean_evaluated),
            format!("{:.1}", exh.mean_evaluated / heur.mean_evaluated),
        ]);
        eprintln!("[ablation_matching] n = {n} done");
    }
    t.print();
    t.write_csv(&cli.out.join("ablation_matching.csv"));
    println!();
    println!("Expected shape: near-identical error, with the heuristic evaluating a");
    println!("small, n-insensitive number of faces per localization while the");
    println!("exhaustive count tracks the O(n⁴) face count.");
}
