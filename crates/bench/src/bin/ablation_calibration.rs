//! Ablation: sensor calibration error — the case for range-free tracking.
//!
//! The particle filter consumes *absolute* RSS, so per-node gain variation
//! (hardware spread, antenna orientation, battery sag) reads as distance
//! error. FTTT consumes *pairwise order statistics*: a global gain shift
//! cancels exactly, and per-node spread only biases pairs whose RSS gap is
//! smaller than the offset difference. This sweep injects per-node
//! calibration offsets `~ N(0, σ_cal²)` unknown to every tracker.

use fttt::config::PaperParams;
use fttt::tracker::{Tracker, TrackerOptions};
use fttt_bench::{Cli, Table};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wsn_baselines::{ExtendedKalman, ParticleFilter, WeightedCentroid};
use wsn_parallel::{par_map, seed_for};
use wsn_signal::Gaussian;

fn errors_at(sigma_cal: f64, trials: usize, seed: u64) -> (f64, f64, f64, f64) {
    let params = PaperParams::default().with_nodes(15);
    let idx: Vec<u64> = (0..trials as u64).collect();
    let out: Vec<(f64, f64, f64, f64)> = par_map(&idx, |_, &i| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed_for(seed, i));
        let field = params.random_field(&mut rng);
        let trace = params.random_trace(60.0, &mut rng);
        let positions = field.deployment().positions();
        let offsets: Vec<f64> = {
            let g = Gaussian::new(0.0, sigma_cal);
            (0..field.len()).map(|_| g.sample(&mut rng)).collect()
        };
        let sampler = params.sampler().with_node_offsets(offsets);

        let map = params.face_map(&field);
        let mut fttt = Tracker::new(map, TrackerOptions::default());
        let mut world = ChaCha8Rng::seed_from_u64(seed_for(seed ^ 0xCA1, i));
        let e_fttt = fttt
            .track(&field, &sampler, &trace, &mut world)
            .error_stats()
            .mean;

        let mut pf = ParticleFilter::new(
            &positions,
            params.rect(),
            params.model(),
            1000,
            params.max_speed,
            params.localization_period(),
        );
        let mut world = ChaCha8Rng::seed_from_u64(seed_for(seed ^ 0xCA1, i));
        let e_pf = pf
            .track(&field, &sampler, &trace, &mut world)
            .error_stats()
            .mean;

        let wcl = WeightedCentroid::with_path_loss_degree(&positions, params.rect(), params.beta);
        let mut world = ChaCha8Rng::seed_from_u64(seed_for(seed ^ 0xCA1, i));
        let e_wcl = wcl
            .track(&field, &sampler, &trace, &mut world)
            .error_stats()
            .mean;

        let mut ekf = ExtendedKalman::new(
            &positions,
            params.rect(),
            params.model(),
            params.localization_period(),
        );
        let mut world = ChaCha8Rng::seed_from_u64(seed_for(seed ^ 0xCA1, i));
        let e_ekf = ekf
            .track(&field, &sampler, &trace, &mut world)
            .error_stats()
            .mean;
        (e_fttt, e_pf, e_wcl, e_ekf)
    });
    let n = out.len() as f64;
    (
        out.iter().map(|o| o.0).sum::<f64>() / n,
        out.iter().map(|o| o.1).sum::<f64>() / n,
        out.iter().map(|o| o.2).sum::<f64>() / n,
        out.iter().map(|o| o.3).sum::<f64>() / n,
    )
}

fn main() {
    let cli = Cli::parse();
    let trials = cli.trials_or(8);
    let sigmas = if cli.fast {
        vec![0.0, 6.0]
    } else {
        vec![0.0, 1.5, 3.0, 6.0, 9.0, 12.0]
    };

    let mut t = Table::new(
        format!("Ablation — per-node calibration error σ_cal (n = 15, k = 5, {trials} trials)"),
        &["σ_cal (dB)", "FTTT (m)", "PF (m)", "EKF (m)", "WCL (m)"],
    );
    for &s in &sigmas {
        let (fttt, pf, wcl, ekf) = errors_at(s, trials, cli.seed);
        t.row(&[
            format!("{s:.1}"),
            format!("{fttt:.2}"),
            format!("{pf:.2}"),
            format!("{ekf:.2}"),
            format!("{wcl:.2}"),
        ]);
        eprintln!("[ablation_calibration] σ = {s} done");
    }
    t.print();
    t.write_csv(&cli.out.join("ablation_calibration.csv"));
    println!();
    println!("Expected shape: the absolute-RSS methods (particle filter, WCL) lose");
    println!("accuracy roughly linearly in σ_cal; FTTT's pairwise-order design damps");
    println!("it, overtaking the particle filter once calibration error reaches the");
    println!("few-dB hardware spread a real mote fleet exhibits.");
}
