//! Fig. 10: example trajectories — PM vs FTTT under grid and random
//! deployment (k = 5, ε = 1).
//!
//! Tracks one random-waypoint target with both methods in the same world
//! (same deployment, trace and noise) and dumps the estimated trajectories
//! as CSV next to a summary table. The paper's visual claim is that FTTT's
//! point cloud hugs the true trace while PM's scatters.

use fttt::PaperParams;
use fttt_bench::{run_once, Cli, MethodKind, Scenario, Table};

fn main() {
    let cli = Cli::parse();
    let params = PaperParams::default()
        .with_nodes(16)
        .with_samples(5)
        .with_epsilon(1.0);

    let mut summary = Table::new(
        "Fig. 10 — one 60 s tracking example (k = 5, ε = 1, n = 16)",
        &[
            "deployment",
            "method",
            "mean err (m)",
            "std (m)",
            "max err (m)",
        ],
    );

    for (deploy_name, grid) in [("grid", true), ("random", false)] {
        for method in [MethodKind::Pm, MethodKind::FtttBasic] {
            let scenario = if grid {
                Scenario::new(params).with_grid()
            } else {
                Scenario::new(params)
            };
            let run = run_once(&scenario, method, cli.seed);
            let stats = run.error_stats();
            summary.row(&[
                deploy_name.into(),
                method.label().into(),
                format!("{:.2}", stats.mean),
                format!("{:.2}", stats.std),
                format!("{:.2}", stats.max),
            ]);

            let mut csv = Table::new(
                "trace",
                &["t", "truth_x", "truth_y", "est_x", "est_y", "error"],
            );
            for l in &run.localizations {
                csv.row(&[
                    format!("{:.2}", l.t),
                    format!("{:.2}", l.truth.x),
                    format!("{:.2}", l.truth.y),
                    format!("{:.2}", l.estimate.x),
                    format!("{:.2}", l.estimate.y),
                    format!("{:.2}", l.error),
                ]);
            }
            csv.write_csv(&cli.out.join(format!(
                "fig10_{deploy_name}_{}.csv",
                method.label().to_lowercase()
            )));
        }
    }
    summary.print();
    println!();
    println!("Expected shape: FTTT's mean/max error well below PM's in both");
    println!("deployments (the paper's Fig. 10 point clouds).");
}
