//! Diagnostic: what the sampling vectors are actually made of.
//!
//! Explains the Fig.-12(b) behaviour mechanistically: under Gaussian
//! shadowing the fraction of `0` (flip-observed) components grows with the
//! sampling times k — the strict all-k-agree rule turns borderline pairs
//! into zeros the fixed-C face map does not expect — while under the
//! idealized band model it stays pinned to the band's geometry.

use fttt::config::PaperParams;
use fttt::diagnostics::VectorComposition;
use fttt::sampling::basic_sampling_vector;
use fttt_bench::{Cli, Table};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wsn_parallel::{par_map, seed_for};

fn composition(params: &PaperParams, trials: usize, seed: u64) -> VectorComposition {
    let idx: Vec<u64> = (0..trials as u64).collect();
    let comps: Vec<VectorComposition> = par_map(&idx, |_, &i| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed_for(seed, i));
        let field = params.random_field(&mut rng);
        let trace = params.random_trace(30.0, &mut rng);
        let sampler = params.sampler();
        let mut agg = VectorComposition::default();
        for p in trace.points() {
            let group = sampler.sample(&field, p.pos, &mut rng);
            agg.add(&VectorComposition::of(&basic_sampling_vector(&group)));
        }
        agg
    });
    let mut total = VectorComposition::default();
    for c in &comps {
        total.add(c);
    }
    total
}

fn main() {
    let cli = Cli::parse();
    let trials = cli.trials_or(8);
    let ks = if cli.fast {
        vec![3usize, 9]
    } else {
        vec![2, 3, 5, 7, 9, 12, 16]
    };

    let mut t = Table::new(
        format!("Diagnostic — sampling-vector composition vs k (n = 15, {trials} trials)"),
        &[
            "k",
            "gauss: 0-frac",
            "gauss: *-frac",
            "ideal: 0-frac",
            "ideal: *-frac",
        ],
    );
    for &k in &ks {
        let gauss = composition(
            &PaperParams::default().with_nodes(15).with_samples(k),
            trials,
            cli.seed,
        );
        let ideal = composition(
            &PaperParams::default()
                .with_nodes(15)
                .with_samples(k)
                .with_idealized_noise(),
            trials,
            cli.seed,
        );
        t.row(&[
            k.to_string(),
            format!("{:.3}", gauss.flipped_fraction()),
            format!("{:.3}", gauss.unknown_fraction()),
            format!("{:.3}", ideal.flipped_fraction()),
            format!("{:.3}", ideal.unknown_fraction()),
        ]);
        eprintln!("[diag_composition] k = {k} done");
    }
    t.print();
    t.write_csv(&cli.out.join("diag_composition.csv"));
    println!();
    println!("Expected shape: the Gaussian 0-fraction climbs steadily with k (every");
    println!("borderline pair eventually witnesses a flip), while the idealized");
    println!("0-fraction saturates at the geometric measure of the uncertain bands.");
    println!("The *-fraction depends only on coverage (R vs field), not on k.");
}
