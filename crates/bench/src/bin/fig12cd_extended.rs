//! Fig. 12(c,d): basic vs extended FTTT — mean error and error standard
//! deviation vs the number of nodes (k = 5, ε = 1).

use fttt::PaperParams;
use fttt_bench::{trial_stats, Cli, MethodKind, Scenario, Table};

fn main() {
    let cli = Cli::parse();
    let trials = cli.trials_or(10);
    let nodes = if cli.fast {
        vec![10usize, 25, 40]
    } else {
        vec![5, 10, 15, 20, 25, 30, 35, 40]
    };

    let mut mean_t = Table::new(
        format!("Fig. 12(c) — mean error: basic vs extended FTTT (k = 5, ε = 1, {trials} trials)"),
        &["n", "basic (m)", "extended (m)"],
    );
    let mut std_t = Table::new(
        format!("Fig. 12(d) — error std: basic vs extended FTTT (k = 5, ε = 1, {trials} trials)"),
        &["n", "basic (m)", "extended (m)", "reduction %"],
    );
    for &n in &nodes {
        let scenario = Scenario::new(
            PaperParams::default()
                .with_nodes(n)
                .with_samples(5)
                .with_epsilon(1.0),
        );
        let basic = trial_stats(&scenario, MethodKind::FtttBasic, trials, cli.seed);
        let ext = trial_stats(&scenario, MethodKind::FtttExtended, trials, cli.seed);
        mean_t.row(&[
            n.to_string(),
            format!("{:.2}", basic.mean_error),
            format!("{:.2}", ext.mean_error),
        ]);
        std_t.row(&[
            n.to_string(),
            format!("{:.2}", basic.mean_std),
            format!("{:.2}", ext.mean_std),
            format!("{:.1}", 100.0 * (1.0 - ext.mean_std / basic.mean_std)),
        ]);
        eprintln!("[fig12cd] n = {n} done");
    }
    mean_t.print();
    println!();
    std_t.print();
    mean_t.write_csv(&cli.out.join("fig12c_mean.csv"));
    std_t.write_csv(&cli.out.join("fig12d_std.csv"));
    println!();
    println!("Expected shape: means roughly equal; the extension cuts the std");
    println!("substantially (the paper reports 79% at n = 10), smoothing the");
    println!("returned trajectory.");
}
