//! Fig. 11(a): dynamic tracking error along the time series
//! (k = 5, ε = 1, n = 10).
//!
//! One shared world, three methods; prints the per-localization error of
//! each and writes the full series to CSV.

use fttt::PaperParams;
use fttt_bench::{run_once, Cli, MethodKind, Scenario, Table};

fn main() {
    let cli = Cli::parse();
    let params = PaperParams::default()
        .with_nodes(10)
        .with_samples(5)
        .with_epsilon(1.0);
    let scenario = Scenario::new(params);

    let fttt = run_once(&scenario, MethodKind::FtttBasic, cli.seed);
    let pm = run_once(&scenario, MethodKind::Pm, cli.seed);
    let mle = run_once(&scenario, MethodKind::DirectMle, cli.seed);

    let mut t = Table::new(
        "Fig. 11(a) — dynamic tracking error over time (k = 5, ε = 1, n = 10)",
        &["t (s)", "FTTT (m)", "PM (m)", "DirectMLE (m)"],
    );
    for ((a, b), c) in fttt
        .localizations
        .iter()
        .zip(&pm.localizations)
        .zip(&mle.localizations)
    {
        t.row(&[
            format!("{:.1}", a.t),
            format!("{:.2}", a.error),
            format!("{:.2}", b.error),
            format!("{:.2}", c.error),
        ]);
    }
    t.write_csv(&cli.out.join("fig11a_timeseries.csv"));

    // Print a decimated view (every 5th row) plus the summary.
    let mut view = Table::new(
        "Fig. 11(a) — every 5th localization",
        &["t (s)", "FTTT (m)", "PM (m)", "DirectMLE (m)"],
    );
    for (i, ((a, b), c)) in fttt
        .localizations
        .iter()
        .zip(&pm.localizations)
        .zip(&mle.localizations)
        .enumerate()
    {
        if i % 5 == 0 {
            view.row(&[
                format!("{:.1}", a.t),
                format!("{:.2}", a.error),
                format!("{:.2}", b.error),
                format!("{:.2}", c.error),
            ]);
        }
    }
    view.print();

    println!();
    let mut s = Table::new(
        "series summary",
        &["method", "mean (m)", "std (m)", "max (m)"],
    );
    for (name, run) in [("FTTT", &fttt), ("PM", &pm), ("DirectMLE", &mle)] {
        let st = run.error_stats();
        s.row(&[
            name.into(),
            format!("{:.2}", st.mean),
            format!("{:.2}", st.std),
            format!("{:.2}", st.max),
        ]);
    }
    s.print();
    println!();
    println!("Expected shape: the FTTT series stays below PM, which stays below");
    println!("Direct MLE, at almost every time instant.");
}
