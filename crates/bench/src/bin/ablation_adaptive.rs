//! Ablation: adaptive double-level grid division ([29], Section 4.3).
//!
//! Compares the full uniform rasterization against the coarse-then-refine
//! builder at equal final resolution: build time, classifier invocations
//! avoided (proxied by time), structural agreement, and the tracking error
//! actually obtained with each map.

use fttt::config::PaperParams;
use fttt::facemap::FaceMap;
use fttt::tracker::{Tracker, TrackerOptions};
use fttt_bench::{Cli, Table};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;
use wsn_parallel::{par_map, seed_for};

fn mean_error_with_map(
    params: &PaperParams,
    adaptive: bool,
    trials: usize,
    seed: u64,
) -> (f64, f64) {
    let idx: Vec<u64> = (0..trials as u64).collect();
    let out: Vec<(f64, f64)> = par_map(&idx, |_, &i| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed_for(seed, i));
        let field = params.random_field(&mut rng);
        let trace = params.random_trace(60.0, &mut rng);
        let positions = field.deployment().positions();
        let t0 = Instant::now();
        let map = if adaptive {
            FaceMap::build_adaptive(
                &positions,
                params.rect(),
                params.uncertainty_constant(),
                8.0 * params.cell_size,
                8,
                1,
            )
        } else {
            FaceMap::build(
                &positions,
                params.rect(),
                params.uncertainty_constant(),
                params.cell_size,
            )
        };
        let build_s = t0.elapsed().as_secs_f64();
        let mut tracker = Tracker::new(map, TrackerOptions::default());
        let run = tracker.track(&field, &params.sampler(), &trace, &mut rng);
        (run.error_stats().mean, build_s)
    });
    let n = out.len() as f64;
    (
        out.iter().map(|o| o.0).sum::<f64>() / n,
        out.iter().map(|o| o.1).sum::<f64>() / n * 1e3,
    )
}

fn main() {
    let cli = Cli::parse();
    let trials = cli.trials_or(8);
    let nodes = if cli.fast {
        vec![10usize, 25]
    } else {
        vec![10, 15, 20, 25, 30, 40]
    };

    let mut t = Table::new(
        format!("Ablation — full vs adaptive grid division (k = 5, ε = 1, {trials} trials)"),
        &[
            "n",
            "full err (m)",
            "adaptive err (m)",
            "full build (ms)",
            "adaptive build (ms)",
        ],
    );
    for &n in &nodes {
        let params = PaperParams::default().with_nodes(n);
        let (full_err, full_ms) = mean_error_with_map(&params, false, trials, cli.seed);
        let (ad_err, ad_ms) = mean_error_with_map(&params, true, trials, cli.seed);
        t.row(&[
            n.to_string(),
            format!("{full_err:.2}"),
            format!("{ad_err:.2}"),
            format!("{full_ms:.0}"),
            format!("{ad_ms:.0}"),
        ]);
        eprintln!("[ablation_adaptive] n = {n} done");
    }
    t.print();
    t.write_csv(&cli.out.join("ablation_adaptive.csv"));
    println!();
    println!("Expected shape: indistinguishable tracking error at a fraction of the");
    println!("offline build time — refining only boundary cells skips the O(pairs)");
    println!("classifier on the interior.");
}
