//! Ablation: the accuracy–energy frontier over the sampling times k.
//!
//! Section 5.1 argues a small k suffices; this experiment prices it. Each
//! extra sample costs acquisition energy on every in-range node at every
//! localization, while the accuracy return diminishes (idealized model) or
//! vanishes (Gaussian model). Energy uses the IRIS-calibrated defaults of
//! `wsn_network::energy`.

use fttt::config::PaperParams;
use fttt::tracker::{Tracker, TrackerOptions};
use fttt_bench::{Cli, Table};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wsn_network::{EnergyLedger, EnergyModel};
use wsn_parallel::{par_map, seed_for};

fn frontier_point(params: &PaperParams, trials: usize, seed: u64) -> (f64, f64, f64) {
    let idx: Vec<u64> = (0..trials as u64).collect();
    let out: Vec<(f64, f64, f64)> = par_map(&idx, |_, &i| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed_for(seed, i));
        let field = params.random_field(&mut rng);
        let map = params.face_map(&field);
        let trace = params.random_trace(60.0, &mut rng);
        let sampler = params.sampler();
        let mut ledger = EnergyLedger::new(EnergyModel::default(), field.len());
        // Track and charge the ledger from the very samplings used.
        let mut tracker = Tracker::new(map, TrackerOptions::default());
        let mut localizations = Vec::new();
        for p in trace.points() {
            let group = sampler.sample(&field, p.pos, &mut rng);
            ledger.charge_grouping(&group);
            let (estimate, outcome) = tracker.localize(&group);
            localizations.push((estimate.distance(p.pos), outcome));
        }
        ledger.charge_idle(trace.duration());
        let mean_err = localizations.iter().map(|l| l.0).sum::<f64>() / localizations.len() as f64;
        (mean_err, ledger.total() * 1e3, ledger.max_node() * 1e3)
    });
    let n = out.len() as f64;
    (
        out.iter().map(|o| o.0).sum::<f64>() / n,
        out.iter().map(|o| o.1).sum::<f64>() / n,
        out.iter().map(|o| o.2).sum::<f64>() / n,
    )
}

fn main() {
    let cli = Cli::parse();
    let trials = cli.trials_or(8);
    let ks = if cli.fast {
        vec![3usize, 9]
    } else {
        vec![2, 3, 5, 7, 9, 12, 16]
    };

    let mut t = Table::new(
        format!(
            "Ablation — accuracy vs energy over sampling times k (n = 15, idealized sensing, 60 s, {trials} trials)"
        ),
        &["k", "mean err (m)", "network energy (mJ)", "hottest node (mJ)"],
    );
    for &k in &ks {
        let params = PaperParams::default()
            .with_nodes(15)
            .with_samples(k)
            .with_idealized_noise();
        let (err, total_mj, max_mj) = frontier_point(&params, trials, cli.seed);
        t.row(&[
            k.to_string(),
            format!("{err:.2}"),
            format!("{total_mj:.1}"),
            format!("{max_mj:.2}"),
        ]);
        eprintln!("[ablation_energy] k = {k} done");
    }
    t.print();
    t.write_csv(&cli.out.join("ablation_energy.csv"));
    println!();
    println!("Expected shape: energy grows linearly in k (every sample is paid on");
    println!("every in-range node) while the error improvement saturates after a few");
    println!("samples — the Section-5.1 logarithmic law priced in joules. Note the");
    println!("localization period is k/λ, so larger k also means fewer (bigger)");
    println!("messages per second.");
}
