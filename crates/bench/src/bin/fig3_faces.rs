//! Fig. 3: how uncertain boundaries reshape the face division.
//!
//! Four sensors in a square; as the square grows (relative spacing up),
//! the uncertain bands occupy more of each pair's geometry until no
//! *certain* face (a face outside every pair's uncertain area) survives —
//! the paper's Fig. 3(a) → 3(c) transition. Also contrasts the C = 1
//! bisector division (Fig. 3(a)) with the uncertain division (Fig. 3(b)).

use fttt::facemap::FaceMap;
use fttt::PaperParams;
use fttt_bench::{Cli, Table};
use wsn_geometry::{Point, Rect};

fn square(center: Point, half: f64) -> Vec<Point> {
    vec![
        Point::new(center.x - half, center.y - half),
        Point::new(center.x + half, center.y - half),
        Point::new(center.x - half, center.y + half),
        Point::new(center.x + half, center.y + half),
    ]
}

fn main() {
    let cli = Cli::parse();
    let params = PaperParams::default();
    let c = params.uncertainty_constant();
    let field = Rect::square(100.0);
    let center = field.center();
    let cell = if cli.fast { 1.0 } else { 0.5 };

    println!("Uncertainty constant C = {c:.4} (β = 4, σ = 6, ε = 1)\n");

    // A fixed 20×20 m observation window at the field centre: the zone a
    // target actually crosses. "Certainty" is meaningful relative to this,
    // because the band arrangement itself is scale invariant.
    let window = wsn_geometry::Rect::new(
        Point::new(center.x - 10.0, center.y - 10.0),
        Point::new(center.x + 10.0, center.y + 10.0),
    );

    let mut t = Table::new(
        "Fig. 3 — Faces of a 4-node square vs node spacing (cell = 0.5 m)",
        &[
            "spacing (m)",
            "faces (C=1)",
            "certain (C=1)",
            "faces (C)",
            "certain (C)",
            "certain area %",
            "window certain %",
        ],
    );
    for half in [5.0, 10.0, 15.0, 20.0, 30.0, 40.0] {
        let pos = square(center, half);
        let bisect = FaceMap::build(&pos, field, 1.0, cell);
        let uncertain = FaceMap::build(&pos, field, c, cell);
        let certain_cells: usize = uncertain
            .faces()
            .iter()
            .filter(|f| f.is_certain())
            .map(|f| f.cell_count)
            .sum();
        let pct = 100.0 * certain_cells as f64 / uncertain.grid().cell_count() as f64;
        let (win_total, win_certain) = uncertain
            .grid()
            .iter_centers()
            .filter(|&(_, p)| window.contains(p))
            .fold((0usize, 0usize), |(tot, cer), (_, p)| {
                let id = uncertain.face_at(p).expect("window is in-field");
                (tot + 1, cer + usize::from(uncertain.face(id).is_certain()))
            });
        let win_pct = 100.0 * win_certain as f64 / win_total as f64;
        t.row(&[
            format!("{:.0}", 2.0 * half),
            format!("{}", bisect.face_count()),
            format!("{}", bisect.certain_face_count()),
            format!("{}", uncertain.face_count()),
            format!("{}", uncertain.certain_face_count()),
            format!("{pct:.1}"),
            format!("{win_pct:.1}"),
        ]);
    }
    t.print();
    println!();
    println!("Expected shape: the face structure itself is scale invariant (the");
    println!("Apollonius bands grow with the pair separation), so the counts are");
    println!("constant across spacing. What changes is certainty relative to a fixed");
    println!("observation zone: the last column shows the central 20×20 m window");
    println!("losing its certain coverage as the nodes move apart — the operational");
    println!("content of the paper's Fig. 3(a) → 3(c) transition.");
}
