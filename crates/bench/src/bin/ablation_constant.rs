//! Ablation: the uncertainty constant C (Section 3.2).
//!
//! Builds the face map with constants between the bisector division
//! (C = 1, the certain-sequence strawman) and several multiples of the
//! radio-derived eq.-3 value, then tracks with basic FTTT on each. Shows
//! that modelling the uncertain band — neither ignoring it nor inflating
//! it — is what buys the accuracy.

use fttt::config::PaperParams;
use fttt::facemap::FaceMap;
use fttt::tracker::{Tracker, TrackerOptions};
use fttt_bench::{Cli, Table};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wsn_parallel::{par_map, seed_for};

fn mean_error_for_c(params: &PaperParams, c: f64, trials: usize, seed: u64) -> (f64, f64) {
    let idx: Vec<u64> = (0..trials as u64).collect();
    let stats: Vec<(f64, f64)> = par_map(&idx, |_, &i| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed_for(seed, i));
        let field = params.random_field(&mut rng);
        let trace = params.random_trace(60.0, &mut rng);
        let map = FaceMap::build(
            &field.deployment().positions(),
            params.rect(),
            c,
            params.cell_size,
        );
        let mut tracker = Tracker::new(map, TrackerOptions::default());
        let run = tracker.track(&field, &params.sampler(), &trace, &mut rng);
        let s = run.error_stats();
        (s.mean, s.std)
    });
    let n = stats.len() as f64;
    (
        stats.iter().map(|s| s.0).sum::<f64>() / n,
        stats.iter().map(|s| s.1).sum::<f64>() / n,
    )
}

fn sweep(params: &PaperParams, c_star: f64, trials: usize, seed: u64, title: String) -> Table {
    let mut t = Table::new(title, &["C", "C/C*", "mean err (m)", "std (m)"]);
    for factor in [0.0, 0.25, 0.5, 1.0, 2.0, 4.0] {
        // factor 0 ⟹ C = 1 exactly (bisector division).
        let c = 1.0 + factor * (c_star - 1.0);
        let (mean, std) = mean_error_for_c(params, c, trials, seed);
        t.row(&[
            format!("{c:.4}"),
            format!("{factor:.2}"),
            format!("{mean:.2}"),
            format!("{std:.2}"),
        ]);
        eprintln!("[ablation_constant] factor = {factor} done");
    }
    t
}

fn main() {
    let cli = Cli::parse();
    let trials = cli.trials_or(10);
    let params = PaperParams::default().with_nodes(15);
    let c_star = params.uncertainty_constant();

    // Under the idealized sensing model the flip-possible band *is* the
    // eq.-3 band, so C = C* makes the offline division exactly consistent
    // with the online statistics — the cleanest test of whether modelling
    // the uncertain area is what buys accuracy.
    let ideal = sweep(
        &params.with_idealized_noise(),
        c_star,
        trials,
        cli.seed,
        format!(
            "Ablation — face-map constant C under idealized sensing (C* = {c_star:.4}; n = 15, {trials} trials)"
        ),
    );
    ideal.print();
    ideal.write_csv(&cli.out.join("ablation_constant_idealized.csv"));

    println!();
    let gauss = sweep(
        &params,
        c_star,
        trials,
        cli.seed,
        format!(
            "Ablation — face-map constant C under Gaussian shadowing (C* = {c_star:.4}; n = 15, {trials} trials)"
        ),
    );
    gauss.print();
    gauss.write_csv(&cli.out.join("ablation_constant_gaussian.csv"));
    println!();
    println!("Expected shape: under idealized sensing the error is minimized at the");
    println!("eq.-3 constant (C/C* = 1) — both ignoring the uncertain area (C = 1)");
    println!("and inflating it are worse. Under heavy Gaussian shadowing no single");
    println!("C is consistent with the unbounded flip statistics, and the optimum");
    println!("flattens out — see EXPERIMENTS.md.");
}
