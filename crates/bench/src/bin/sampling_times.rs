//! Section 5.1: determination of grouping sampling times.
//!
//! Prints the closed-form bound `k(λ, N)` over a grid of confidence levels
//! and pair counts, validates the paper's "20 nodes, λ = 0.99 ⟹ k = 16"
//! example, and Monte-Carlo-checks the all-flips-captured probability.

use fttt::theory::{all_flips_probability, required_sampling_times};
use fttt_bench::{Cli, Table};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use wsn_parallel::{par_map, seed_for};

fn monte_carlo(k: usize, n_pairs: usize, trials: usize, seed: u64) -> f64 {
    let idx: Vec<u64> = (0..trials as u64).collect();
    let hits: Vec<u32> = par_map(&idx, |_, &i| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed_for(seed, i));
        let ok = (0..n_pairs).all(|_| {
            let mut seq = false;
            let mut rev = false;
            for _ in 0..k {
                if rng.gen::<bool>() {
                    seq = true;
                } else {
                    rev = true;
                }
            }
            seq && rev
        });
        u32::from(ok)
    });
    hits.iter().copied().sum::<u32>() as f64 / trials as f64
}

fn main() {
    let cli = Cli::parse();
    let trials = cli.trials_or(100_000);

    let mut t = Table::new(
        "Section 5.1 — required sampling times k(λ, N)",
        &["pairs N", "λ=0.90", "λ=0.95", "λ=0.99", "λ=0.999"],
    );
    for n_pairs in [1usize, 6, 45, 105, 190, 435, 780] {
        let ks: Vec<String> = [0.90, 0.95, 0.99, 0.999]
            .iter()
            .map(|&l| required_sampling_times(l, n_pairs).to_string())
            .collect();
        t.row(&[
            n_pairs.to_string(),
            ks[0].clone(),
            ks[1].clone(),
            ks[2].clone(),
            ks[3].clone(),
        ]);
    }
    t.print();

    let n_pairs_20_nodes = 20 * 19 / 2;
    let k = required_sampling_times(0.99, n_pairs_20_nodes);
    println!();
    println!(
        "Paper example: 20 in-range nodes (N = {n_pairs_20_nodes} pairs), λ = 0.99 ⟹ k = {k} \
         (paper reports k = 16)"
    );

    println!();
    let mut mc = Table::new(
        "Monte-Carlo check of the all-flips-captured probability",
        &["k", "pairs N", "closed form", "empirical", "|Δ|"],
    );
    for (k, n_pairs) in [
        (3usize, 6usize),
        (5, 6),
        (5, 45),
        (7, 45),
        (9, 190),
        (16, 190),
    ] {
        let theory = all_flips_probability(k, n_pairs);
        let emp = monte_carlo(k, n_pairs, trials, cli.seed);
        mc.row(&[
            k.to_string(),
            n_pairs.to_string(),
            format!("{theory:.4}"),
            format!("{emp:.4}"),
            format!("{:.4}", (theory - emp).abs()),
        ]);
    }
    mc.print();
}
