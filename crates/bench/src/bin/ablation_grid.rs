//! Ablation: raster cell size of the approximate grid division
//! (Section 4.3).
//!
//! Finer cells shrink the intra-face error but inflate the offline build.
//! This sweep exposes the trade-off the paper's adaptive-division follow-up
//! work ([29]) optimizes.

use fttt::PaperParams;
use fttt_bench::{trial_stats, Cli, MethodKind, Scenario, Table};
use std::time::Instant;

fn main() {
    let cli = Cli::parse();
    let trials = cli.trials_or(8);
    let cells = if cli.fast {
        vec![4.0, 1.0]
    } else {
        vec![8.0, 4.0, 2.0, 1.0, 0.5]
    };

    let mut t = Table::new(
        format!("Ablation — grid cell size (n = 15, k = 5, ε = 1, {trials} trials)"),
        &["cell (m)", "faces", "build (ms)", "mean err (m)", "std (m)"],
    );
    for &cell in &cells {
        let params = PaperParams::default().with_nodes(15).with_cell_size(cell);
        // Face count / build time measured on one representative world.
        let mut rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(cli.seed);
        let field = params.random_field(&mut rng);
        let t0 = Instant::now();
        let map = params.face_map(&field);
        let build_ms = t0.elapsed().as_secs_f64() * 1e3;

        let scenario = Scenario::new(params);
        let agg = trial_stats(&scenario, MethodKind::FtttBasic, trials, cli.seed);
        t.row(&[
            format!("{cell}"),
            map.face_count().to_string(),
            format!("{build_ms:.0}"),
            format!("{:.2}", agg.mean_error),
            format!("{:.2}", agg.mean_std),
        ]);
        eprintln!("[ablation_grid] cell = {cell} done");
    }
    t.print();
    t.write_csv(&cli.out.join("ablation_grid.csv"));
    println!();
    println!("Expected shape: error falls with finer cells until the inter-face error");
    println!("dominates (≈1–2 m cells), while build cost grows quadratically.");
}
