//! Table 1: system parameters and settings.
//!
//! Prints the paper's parameter table alongside the values this suite
//! actually uses, plus the derived quantities (uncertainty constant C,
//! localization period) the other experiments depend on.

use fttt::config::PaperParams;
use fttt_bench::Table;

fn main() {
    let p = PaperParams::default();
    let mut t = Table::new(
        "Table 1 — System Parameters and Settings",
        &["parameter", "paper", "suite default"],
    );
    t.row(&[
        "Field size".into(),
        "100 × 100 m²".into(),
        format!("{0} × {0} m²", p.field_side),
    ]);
    t.row(&[
        "Noise model (β, σ_X)".into(),
        "β = 4, σ_X = 6".into(),
        format!("β = {}, σ_X = {}", p.beta, p.sigma),
    ]);
    t.row(&[
        "Number of sensor nodes n".into(),
        "5 – 40".into(),
        format!("{}", p.nodes),
    ]);
    t.row(&[
        "Sensing range R".into(),
        "40 m".into(),
        format!("{} m", p.sensing_range),
    ]);
    t.row(&[
        "Sensing resolution ε".into(),
        "0.5 – 3 dBm".into(),
        format!("{} dBm", p.epsilon),
    ]);
    t.row(&[
        "Sampling rate λ".into(),
        "10 Hz".into(),
        format!("{} Hz", p.sampling_rate_hz),
    ]);
    t.row(&[
        "Target velocity".into(),
        "1 – 5 m/s".into(),
        format!("{} – {} m/s", p.min_speed, p.max_speed),
    ]);
    t.row(&[
        "Sampling times k".into(),
        "3 – 9".into(),
        format!("{}", p.samples_k),
    ]);
    t.row(&[
        "Grid cell (impl.)".into(),
        "—".into(),
        format!("{} m", p.cell_size),
    ]);
    t.row(&[
        "Uncertainty constant C (eq. 3)".into(),
        "derived".into(),
        format!("{:.4}", p.uncertainty_constant()),
    ]);
    t.row(&[
        "Localization period k/λ".into(),
        "derived".into(),
        format!("{:.2} s", p.localization_period()),
    ]);
    t.print();
}
