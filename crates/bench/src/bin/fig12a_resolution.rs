//! Fig. 12(a): impact of the sensing resolution ε on FTTT's mean error
//! (k = 5; n ∈ {10, 15, 20, 25}; ε ∈ [0.5, 3] dBm).

use fttt::PaperParams;
use fttt_bench::{trial_stats, Cli, MethodKind, Scenario, Table};

fn main() {
    let cli = Cli::parse();
    let trials = cli.trials_or(10);
    let node_counts = [10usize, 15, 20, 25];
    let epsilons = if cli.fast {
        vec![0.5, 1.5, 3.0]
    } else {
        vec![0.5, 1.0, 1.5, 2.0, 2.5, 3.0]
    };

    let run = |idealized: bool, title: String| -> Table {
        let mut t = Table::new(title, &["ε (dBm)", "n=10", "n=15", "n=20", "n=25"]);
        for &eps in &epsilons {
            let mut cells = vec![format!("{eps:.1}")];
            for &n in &node_counts {
                let mut params = PaperParams::default()
                    .with_nodes(n)
                    .with_samples(5)
                    .with_epsilon(eps);
                if idealized {
                    params = params.with_idealized_noise();
                }
                let scenario = Scenario::new(params);
                let agg = trial_stats(&scenario, MethodKind::FtttBasic, trials, cli.seed);
                cells.push(format!("{:.2}", agg.mean_error));
            }
            t.row(&cells);
            eprintln!(
                "[fig12a{}] ε = {eps} done",
                if idealized { "/ideal" } else { "" }
            );
        }
        t
    };

    let ideal = run(
        true,
        format!(
            "Fig. 12(a) — FTTT mean error vs resolution ε, idealized sensing (k = 5, {trials} trials)"
        ),
    );
    ideal.print();
    ideal.write_csv(&cli.out.join("fig12a_resolution_idealized.csv"));
    println!();
    let gauss = run(
        false,
        format!(
            "Fig. 12(a) addendum — same sweep under Gaussian eq.-1 shadowing ({trials} trials)"
        ),
    );
    gauss.print();
    gauss.write_csv(&cli.out.join("fig12a_resolution_gaussian.csv"));
    println!();
    println!("Expected shape (paper, top table): error grows with ε — a coarser");
    println!("sensing resolution widens every uncertain band and with it the faces;");
    println!("steepest for small n, flattening for n ≥ 20. Under Gaussian shadowing");
    println!("(bottom) σ = 6 dominates ε in eq. (3), so the ε sensitivity is mostly");
    println!("washed out — see EXPERIMENTS.md.");
}
