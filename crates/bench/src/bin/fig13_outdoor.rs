//! Fig. 13: the outdoor system evaluation, simulated.
//!
//! The paper deploys 9 Crossbow IRIS motes in a "+" on a playground and
//! walks a target along a "⌐" path at 1–5 m/s, its 4 kHz piezo tone giving
//! the RSS. We reproduce the exact geometry — cross deployment, corner
//! path, changeable walking speed — with RSS drawn from the same
//! log-normal model the paper's theory assumes outdoors, and run both
//! basic and extended FTTT over the identical signal streams.

use fttt::config::PaperParams;
use fttt::tracker::{Tracker, TrackerOptions};
use fttt_bench::{Cli, Table};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wsn_geometry::{Point, Rect};
use wsn_mobility::WaypointPath;
use wsn_network::{Deployment, SensorField};

fn main() {
    let cli = Cli::parse();
    // Outdoor playground: gentler multipath than the indoor β = 4 worst
    // case, same shadowing.
    let params = PaperParams {
        beta: 3.0,
        nodes: 9,
        samples_k: 5,
        cell_size: if cli.fast { 1.0 } else { 0.5 },
        ..PaperParams::default()
    };
    let field_rect = Rect::square(100.0);
    let deployment = Deployment::cross(field_rect.center(), 2, 15.0, field_rect);
    let field = SensorField::new(deployment, params.sensing_range);

    // The "⌐" walk: 40 m out, 40 m down, through the cross's upper arm.
    let path = WaypointPath::corner(Point::new(30.0, 70.0), 40.0);
    let mut rng = ChaCha8Rng::seed_from_u64(cli.seed);
    let trace = path.walk_random_speed(
        params.min_speed,
        params.max_speed,
        params.localization_period(),
        &mut rng,
    );

    let map = params.face_map(&field);
    println!(
        "cross deployment: 9 nodes, arm spacing 15 m; faces: {}; C = {:.4}\n",
        map.face_count(),
        params.uncertainty_constant()
    );

    let sampler = params.sampler();
    let mut summary = Table::new(
        "Fig. 13 — outdoor cross deployment, ⌐-shaped walk (simulated)",
        &["method", "mean err (m)", "std (m)", "max err (m)"],
    );
    for (name, options) in [
        ("FTTT basic", TrackerOptions::default()),
        ("FTTT extended", TrackerOptions::extended()),
    ] {
        // Same signal stream for both: re-seed per method.
        let mut method_rng = ChaCha8Rng::seed_from_u64(cli.seed.wrapping_add(1));
        let mut tracker = Tracker::new(map.clone(), options);
        let run = tracker.track(&field, &sampler, &trace, &mut method_rng);
        let stats = run.error_stats();
        summary.row(&[
            name.into(),
            format!("{:.2}", stats.mean),
            format!("{:.2}", stats.std),
            format!("{:.2}", stats.max),
        ]);

        let mut csv = Table::new(
            "trace",
            &["t", "truth_x", "truth_y", "est_x", "est_y", "error"],
        );
        for l in &run.localizations {
            csv.row(&[
                format!("{:.2}", l.t),
                format!("{:.2}", l.truth.x),
                format!("{:.2}", l.truth.y),
                format!("{:.2}", l.estimate.x),
                format!("{:.2}", l.estimate.y),
                format!("{:.2}", l.error),
            ]);
        }
        let slug = if name.contains("extended") {
            "extended"
        } else {
            "basic"
        };
        csv.write_csv(&cli.out.join(format!("fig13_outdoor_{slug}.csv")));
    }
    summary.print();
    println!();
    println!("Expected shape: both variants track the corner walk with acceptable");
    println!("worst-case error; the extended variant is smoother (smaller std),");
    println!("especially around the turning corner.");
}
