//! Fig. 11(b,c): mean tracking error and its standard deviation vs the
//! number of sensor nodes (5–40), for FTTT, PM and Direct MLE
//! (k = 5, ε = 1, random deployment, Monte-Carlo over worlds).

use fttt::PaperParams;
use fttt_bench::{trial_stats, Cli, MethodKind, Scenario, Table};

fn main() {
    let cli = Cli::parse();
    let trials = cli.trials_or(10);
    let methods = [
        MethodKind::FtttBasic,
        MethodKind::Pm,
        MethodKind::DirectMle,
        MethodKind::Wcl,
    ];
    let nodes = if cli.fast {
        vec![5usize, 10, 20]
    } else {
        vec![5, 10, 15, 20, 25, 30, 35, 40]
    };

    let mut mean_t = Table::new(
        format!("Fig. 11(b) — mean error vs nodes (k = 5, ε = 1, {trials} trials)"),
        &["n", "FTTT (m)", "PM (m)", "DirectMLE (m)", "WCL (m)"],
    );
    let mut std_t = Table::new(
        format!("Fig. 11(c) — error std vs nodes (k = 5, ε = 1, {trials} trials)"),
        &["n", "FTTT (m)", "PM (m)", "DirectMLE (m)", "WCL (m)"],
    );

    for &n in &nodes {
        let scenario = Scenario::new(
            PaperParams::default()
                .with_nodes(n)
                .with_samples(5)
                .with_epsilon(1.0),
        );
        let aggs: Vec<_> = methods
            .iter()
            .map(|&m| trial_stats(&scenario, m, trials, cli.seed))
            .collect();
        mean_t.row(&[
            n.to_string(),
            format!("{:.2}", aggs[0].mean_error),
            format!("{:.2}", aggs[1].mean_error),
            format!("{:.2}", aggs[2].mean_error),
            format!("{:.2}", aggs[3].mean_error),
        ]);
        std_t.row(&[
            n.to_string(),
            format!("{:.2}", aggs[0].mean_std),
            format!("{:.2}", aggs[1].mean_std),
            format!("{:.2}", aggs[2].mean_std),
            format!("{:.2}", aggs[3].mean_std),
        ]);
        eprintln!("[fig11bc] n = {n} done");
    }
    mean_t.print();
    println!();
    std_t.print();
    mean_t.write_csv(&cli.out.join("fig11b_mean.csv"));
    std_t.write_csv(&cli.out.join("fig11c_std.csv"));
    println!();
    println!("Expected shape: FTTT < PM < DirectMLE at every n; both error and std");
    println!("fall sharply up to n ≈ 10 and flatten beyond.");
}
