//! Fig. 2: the uncertain boundary of a node pair.
//!
//! For two nodes at (±d, 0) and the Table-1 radio model, prints the two
//! Apollonius circles (centre, radius) and the axis width of the uncertain
//! band as the sensing resolution ε sweeps over its Table-1 range —
//! the geometry the whole strategy is built on.

use fttt_bench::Table;
use wsn_geometry::{Point, UncertainBoundary};
use wsn_signal::uncertainty_constant;

fn main() {
    let d = 10.0; // half-separation of the pair, metres
    let a = Point::new(d, 0.0);
    let b = Point::new(-d, 0.0);
    let mut t = Table::new(
        "Fig. 2 — Uncertain boundaries of a node pair at (±10, 0) m (β = 4, σ = 6)",
        &[
            "ε (dBm)",
            "C",
            "circle A centre x",
            "circle A radius",
            "circle B centre x",
            "circle B radius",
            "band on axis (m)",
        ],
    );
    for eps in [0.5, 1.0, 1.5, 2.0, 2.5, 3.0] {
        let c = uncertainty_constant(eps, 4.0, 6.0);
        let ub = UncertainBoundary::new(a, b, c).expect("C > 1 for positive ε");
        t.row(&[
            format!("{eps:.1}"),
            format!("{c:.4}"),
            format!("{:.2}", ub.near_first.center.x),
            format!("{:.2}", ub.near_first.radius),
            format!("{:.2}", ub.near_second.center.x),
            format!("{:.2}", ub.near_second.radius),
            format!("{:.2}", ub.band_width_on_axis()),
        ]);
    }
    t.print();
    println!();
    println!("The band between the two circles is the pair's uncertain area:");
    println!("inside it the RSS order of the two nodes flips between samples.");
}
