//! Ablation: sensitivity to the target's mobility model.
//!
//! FTTT assumes nothing about target motion; the model-based comparator
//! (particle filter) bakes in a constant-velocity prior, and PM bakes in a
//! maximum velocity. This experiment swaps the mobility model under all
//! three — random waypoint (the paper's), a smooth Gauss–Markov walker, a
//! jittery Gauss–Markov walker, and a straight dash at the speed limit —
//! and watches who cares.

use fttt::config::PaperParams;
use fttt::tracker::{Tracker, TrackerOptions};
use fttt_bench::{Cli, Table};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wsn_baselines::{ParticleFilter, PathMatching};
use wsn_geometry::Point;
use wsn_mobility::{GaussMarkov, Trace, WaypointPath};
use wsn_parallel::{par_map, seed_for};

#[derive(Clone, Copy)]
enum Mobility {
    RandomWaypoint,
    GaussMarkovSmooth,
    GaussMarkovJittery,
    StraightDash,
}

impl Mobility {
    fn label(self) -> &'static str {
        match self {
            Mobility::RandomWaypoint => "random waypoint",
            Mobility::GaussMarkovSmooth => "Gauss–Markov α=0.95",
            Mobility::GaussMarkovJittery => "Gauss–Markov α=0.2",
            Mobility::StraightDash => "straight dash 5 m/s",
        }
    }

    fn trace(self, params: &PaperParams, rng: &mut ChaCha8Rng) -> Trace {
        let dt = params.localization_period();
        match self {
            Mobility::RandomWaypoint => params.random_trace(60.0, rng),
            Mobility::GaussMarkovSmooth => {
                GaussMarkov::new(params.rect(), 0.95, 3.0, 0.8, 0.4).trace(60.0, dt, rng)
            }
            Mobility::GaussMarkovJittery => {
                GaussMarkov::new(params.rect(), 0.2, 3.0, 1.5, 1.2).trace(60.0, dt, rng)
            }
            Mobility::StraightDash => {
                WaypointPath::new(vec![Point::new(5.0, 10.0), Point::new(95.0, 90.0)])
                    .walk_constant(5.0, dt)
            }
        }
    }
}

fn mean_errors(mobility: Mobility, trials: usize, seed: u64) -> (f64, f64, f64) {
    let params = PaperParams::default().with_nodes(15);
    let idx: Vec<u64> = (0..trials as u64).collect();
    let out: Vec<(f64, f64, f64)> = par_map(&idx, |_, &i| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed_for(seed, i));
        let field = params.random_field(&mut rng);
        let trace = mobility.trace(&params, &mut rng);
        let positions = field.deployment().positions();
        let sampler = params.sampler();

        let map = params.face_map(&field);
        let mut fttt = Tracker::new(map, TrackerOptions::default());
        let mut world = ChaCha8Rng::seed_from_u64(seed_for(seed ^ 0xF17, i));
        let e_fttt = fttt
            .track(&field, &sampler, &trace, &mut world)
            .error_stats()
            .mean;

        let mut pm = PathMatching::new(
            &positions,
            params.rect(),
            params.cell_size,
            params.max_speed,
            params.localization_period(),
        );
        let mut world = ChaCha8Rng::seed_from_u64(seed_for(seed ^ 0xF17, i));
        let e_pm = pm
            .track(&field, &sampler, &trace, &mut world)
            .error_stats()
            .mean;

        let mut pf = ParticleFilter::new(
            &positions,
            params.rect(),
            params.model(),
            1000,
            params.max_speed,
            params.localization_period(),
        );
        let mut world = ChaCha8Rng::seed_from_u64(seed_for(seed ^ 0xF17, i));
        let e_pf = pf
            .track(&field, &sampler, &trace, &mut world)
            .error_stats()
            .mean;
        (e_fttt, e_pm, e_pf)
    });
    let n = out.len() as f64;
    (
        out.iter().map(|o| o.0).sum::<f64>() / n,
        out.iter().map(|o| o.1).sum::<f64>() / n,
        out.iter().map(|o| o.2).sum::<f64>() / n,
    )
}

fn main() {
    let cli = Cli::parse();
    let trials = cli.trials_or(8);
    let models = [
        Mobility::RandomWaypoint,
        Mobility::GaussMarkovSmooth,
        Mobility::GaussMarkovJittery,
        Mobility::StraightDash,
    ];

    let mut t = Table::new(
        format!("Ablation — mobility-model sensitivity (n = 15, k = 5, {trials} trials)"),
        &["mobility", "FTTT (m)", "PM (m)", "PF (m)"],
    );
    for &m in &models {
        let (fttt, pm, pf) = mean_errors(m, trials, cli.seed);
        t.row(&[
            m.label().into(),
            format!("{fttt:.2}"),
            format!("{pm:.2}"),
            format!("{pf:.2}"),
        ]);
        eprintln!("[ablation_mobility] {} done", m.label());
    }
    t.print();
    t.write_csv(&cli.out.join("ablation_mobility.csv"));
    println!();
    println!("Expected shape: FTTT's error is nearly flat across mobility models (it");
    println!("assumes nothing about motion); the particle filter's constant-velocity");
    println!("prior helps on smooth walks and hurts on jittery ones — the");
    println!("flexibility argument of the paper's Sections 1–2.");
}
