//! The fault campaign: sweeps fault regimes × session-wrapped trackers,
//! prints the degradation table, writes `BENCH_robustness.json` and exits
//! non-zero on any graceful-degradation envelope violation.
//!
//! Usage:
//!
//! * `fault_campaign [--seed N] [--trials N] [--fast]` — single-process
//!   run (`--fast` is the reduced tier-1 smoke workload).
//! * `fault_campaign --churn [...]` — the live-topology-churn campaign
//!   instead of the built-in sweep: a staggered death/birth storm under
//!   three map policies (stale / incremental repair / rebuild per event),
//!   with the incremental-vs-rebuild per-trial digest identity enforced
//!   as an envelope. Composes with `--shards`, `--fast` and
//!   `--check-determinism` (churn goldens are separate baseline entries).
//! * `fault_campaign --shards N` — coordinator mode: spawns `N` child
//!   processes (one per shard), each running the trial subset
//!   `trial % N == shard`, merges their shard files and writes the same
//!   artifact a single-process run would — bit-identical rows and
//!   campaign checksum, which the coordinator asserts.
//! * `fault_campaign --shards N --shard-id I` — one worker: writes
//!   `shard-I-of-N.json` into `--shard-dir` (default `<out>/shards`) and
//!   exits without touching the merged artifact.
//! * `fault_campaign --shards N --merge-only` — coordinator without
//!   workers: merge whatever shard files already sit in `--shard-dir`
//!   (a finished run, or a doctored one in the failure-path tests).
//!
//! Every coordinator failure — a worker that cannot spawn, exits
//! nonzero or is killed, a missing / unreadable / corrupt shard file, a
//! shard that ran the wrong config — is reported on stderr as a
//! `fault_campaign: shard N: ...` diagnostic and exits 1, without a
//! panic backtrace. When the coordinator spawned the workers itself it
//! also removes its shard files on the way out, so a crashed run cannot
//! poison the next one; `--merge-only` leaves the evidence in place.
//! * `fault_campaign --check-determinism [--fast]` — golden-checksum
//!   gate: recomputes the campaign checksum and compares it against
//!   `crates/bench/baselines/robustness_checksums.json` (or
//!   `--checksum-baseline FILE`), exiting 1 on drift without writing any
//!   artifact.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use fttt::replay::digest_hex;
use fttt_bench::replay::{check_checksum, checksum_key};
use fttt_bench::robustness::{
    campaign_checksum, campaign_field_side, campaign_kind_label, check_churn_digests,
    check_envelopes, parse_shard_json, render_json, render_shard_json, rows_from_stats,
    run_campaign_stats, CampaignConfig, CampaignKind, CampaignStats, TrialStat,
};
use fttt_bench::{Cli, Table};

fn main() {
    let cli = Cli::parse();
    let mut cfg = if cli.fast {
        CampaignConfig::fast(cli.seed)
    } else {
        CampaignConfig::full(cli.seed)
    };
    if let Some(trials) = cli.trials {
        cfg.trials = trials.max(1);
    }
    let kind = if cli.churn {
        CampaignKind::Churn
    } else {
        CampaignKind::Builtin
    };
    let shard_dir = cli
        .shard_dir
        .clone()
        .unwrap_or_else(|| cli.out.join("shards"));

    // Fail on a bad baseline / output path / shard dir *now*, before the
    // campaign burns minutes of trials.
    let determinism_baseline = if cli.check_determinism {
        let path = baseline_path(&cli);
        match std::fs::read_to_string(&path) {
            Ok(text) => Some((path, text)),
            Err(e) => {
                eprintln!(
                    "fault_campaign: cannot read checksum baseline {}: {e}",
                    path.display()
                );
                std::process::exit(1);
            }
        }
    } else {
        if let Err(msg) = wsn_telemetry::ensure_writable_file(Path::new("BENCH_robustness.json")) {
            eprintln!("fault_campaign: BENCH_robustness.json: {msg}");
            std::process::exit(1);
        }
        None
    };
    if cli.shards > 1 || cli.shard_id.is_some() || cli.merge_only {
        if let Err(msg) = wsn_telemetry::ensure_writable_dir(&shard_dir) {
            eprintln!("fault_campaign: --shard-dir: {msg}");
            std::process::exit(1);
        }
    }

    if let Some(shard_id) = cli.shard_id {
        if let Err(msg) = run_shard(&cfg, &kind, cli.shards, shard_id, &shard_dir) {
            eprintln!("fault_campaign: {msg}");
            std::process::exit(1);
        }
        return;
    }

    let (stats, metrics) = if cli.shards > 1 || cli.merge_only {
        match run_coordinator(&cfg, &kind, cli.shards, &shard_dir, &cli) {
            Ok(merged) => merged,
            Err(msg) => {
                eprintln!("fault_campaign: {msg}");
                std::process::exit(1);
            }
        }
    } else {
        let registry = Arc::new(wsn_telemetry::Registry::new());
        wsn_telemetry::install(Arc::clone(&registry));
        let stats = run_campaign_stats(&cfg, &kind, 1, 0);
        wsn_telemetry::uninstall();
        (stats, registry.snapshot())
    };
    let rows = rows_from_stats(&cfg, &stats.cells, &stats.stats);
    let checksum = campaign_checksum(&cfg, &stats.cells, stats.map_digest, &stats.stats);

    if let Some((path, text)) = determinism_baseline {
        match check_checksum(&text, &cfg, campaign_kind_label(&kind), checksum) {
            Ok(()) => {
                println!(
                    "determinism gate: {} checksum {} matches {}",
                    checksum_key(&cfg, campaign_kind_label(&kind)),
                    digest_hex(checksum),
                    path.display()
                );
                return;
            }
            Err(msg) => {
                eprintln!("determinism gate FAILED: {msg}");
                std::process::exit(1);
            }
        }
    }

    print_table(&rows, &cfg);
    println!("campaign checksum: {}", digest_hex(checksum));

    let mut violations = check_envelopes(&rows, campaign_field_side(&cfg));
    violations.extend(check_churn_digests(&stats.cells, &stats.stats));
    let json = render_json(&rows, &cfg, &violations, Some(&metrics), Some(checksum));
    let path = "BENCH_robustness.json";
    std::fs::write(path, json).expect("write BENCH_robustness.json");
    println!("wrote {path}");

    if violations.is_empty() {
        println!("all graceful-degradation envelopes hold");
    } else {
        eprintln!("\n{} envelope violation(s):", violations.len());
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
}

fn shard_file(shard_dir: &Path, shard_id: usize, shards: usize) -> PathBuf {
    shard_dir.join(format!("shard-{shard_id}-of-{shards}.json"))
}

/// Worker mode: run one shard's trial subset, write its stats + metrics.
fn run_shard(
    cfg: &CampaignConfig,
    kind: &CampaignKind,
    shards: usize,
    shard_id: usize,
    shard_dir: &Path,
) -> Result<(), String> {
    if shard_id >= shards {
        return Err(format!(
            "--shard-id {shard_id} out of range for --shards {shards}"
        ));
    }
    let registry = Arc::new(wsn_telemetry::Registry::new());
    wsn_telemetry::install(Arc::clone(&registry));
    let stats = run_campaign_stats(cfg, kind, shards, shard_id);
    wsn_telemetry::uninstall();
    std::fs::create_dir_all(shard_dir)
        .map_err(|e| format!("create shard dir {}: {e}", shard_dir.display()))?;
    let path = shard_file(shard_dir, shard_id, shards);
    let json = render_shard_json(
        cfg,
        shards,
        shard_id,
        &stats.stats,
        stats.map_digest,
        &registry.snapshot(),
    );
    std::fs::write(&path, json).map_err(|e| format!("write {}: {e}", path.display()))?;
    println!(
        "shard {shard_id}/{shards}: {} trials -> {}",
        stats.stats.len(),
        path.display()
    );
    Ok(())
}

/// Removes the coordinator's own shard files (and the directory, if that
/// leaves it empty) so a failed run cannot feed stale shards to the next.
fn cleanup_shard_files(shard_dir: &Path, shards: usize) {
    for shard_id in 0..shards {
        let _ = std::fs::remove_file(shard_file(shard_dir, shard_id, shards));
    }
    let _ = std::fs::remove_dir(shard_dir); // only succeeds when empty
}

/// Spawns one worker per shard and waits for all of them, reporting every
/// failed shard by name. A worker that cannot even spawn kills the ones
/// already running rather than leaving them orphaned.
fn spawn_workers(
    cfg: &CampaignConfig,
    shards: usize,
    shard_dir: &Path,
    cli: &Cli,
) -> Result<(), String> {
    let exe = std::env::current_exe().map_err(|e| format!("own executable path: {e}"))?;
    let mut children: Vec<(usize, std::process::Child)> = Vec::with_capacity(shards);
    for shard_id in 0..shards {
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("--seed")
            .arg(cli.seed.to_string())
            .arg("--trials")
            .arg(cfg.trials.to_string())
            .arg("--shards")
            .arg(shards.to_string())
            .arg("--shard-id")
            .arg(shard_id.to_string())
            .arg("--shard-dir")
            .arg(shard_dir);
        if cli.fast {
            cmd.arg("--fast");
        }
        if cli.churn {
            cmd.arg("--churn");
        }
        match cmd.spawn() {
            Ok(child) => children.push((shard_id, child)),
            Err(e) => {
                for (_, mut running) in children {
                    let _ = running.kill();
                    let _ = running.wait();
                }
                return Err(format!("shard {shard_id}: cannot spawn worker: {e}"));
            }
        }
    }
    // Wait for *all* workers before judging, so one failure does not
    // orphan the rest; then report every casualty by shard id.
    let mut failures = Vec::new();
    for (shard_id, child) in &mut children {
        match child.wait() {
            Ok(status) if status.success() => {}
            Ok(status) => failures.push(format!("shard {shard_id}: worker exited with {status}")),
            Err(e) => failures.push(format!("shard {shard_id}: cannot wait for worker: {e}")),
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("\n  "))
    }
}

/// Merges the shard files in `shard_dir` into one campaign result,
/// validating that every shard ran the coordinator's config over the
/// same deterministic map.
fn merge_shard_files(
    cfg: &CampaignConfig,
    kind: &CampaignKind,
    shards: usize,
    shard_dir: &Path,
) -> Result<(CampaignStats, wsn_telemetry::Snapshot), String> {
    let mut merged: Vec<TrialStat> = Vec::new();
    let mut metrics = wsn_telemetry::Snapshot::default();
    let mut map_digest = None;
    for shard_id in 0..shards {
        let path = shard_file(shard_dir, shard_id, shards);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| format!("shard {shard_id}: cannot read {}: {e}", path.display()))?;
        let shard = parse_shard_json(&text).map_err(|e| {
            format!(
                "shard {shard_id}: corrupt shard file {}: {e}",
                path.display()
            )
        })?;
        if shard.config != *cfg {
            return Err(format!(
                "shard {shard_id}: {} ran a different config than the coordinator",
                path.display()
            ));
        }
        if shard.shard != shard_id || shard.shards != shards {
            return Err(format!(
                "shard {shard_id}: {} claims shard {}/{} — wrong file in the shard dir",
                path.display(),
                shard.shard,
                shard.shards
            ));
        }
        match map_digest {
            None => map_digest = Some(shard.map_digest),
            Some(d) => {
                if d != shard.map_digest {
                    return Err(format!(
                        "shard {shard_id}: face-map digest disagrees with shard 0 — \
                         non-deterministic map build"
                    ));
                }
            }
        }
        merged.extend(shard.stats);
        if let Err(e) = metrics.try_merge(&shard.metrics) {
            // Shard workers are spawned from this very binary, so bucket
            // ladders should always agree — a mismatch means a stale or
            // foreign shard file and the merge must not silently mangle
            // the histograms.
            return Err(format!(
                "shard {shard_id}: {} has incompatible metrics: {e}",
                path.display()
            ));
        }
    }
    merged.sort_by_key(|s| (s.cell, s.trial));
    let cells = fttt_bench::robustness::campaign_cells(kind);
    println!("merged {} trials from {shards} shard files", merged.len());
    Ok((
        CampaignStats {
            cells,
            stats: merged,
            map_digest: map_digest.ok_or("no shards to merge")?,
        },
        metrics,
    ))
}

/// Coordinator mode: spawn one worker per shard (unless `--merge-only`),
/// re-parse their files, merge, and check the merge reproduces the
/// single-process checksum derivation (same cells, same map digest, full
/// trial set). Shard files the coordinator itself produced are cleaned up
/// when anything fails.
fn run_coordinator(
    cfg: &CampaignConfig,
    kind: &CampaignKind,
    shards: usize,
    shard_dir: &Path,
    cli: &Cli,
) -> Result<(CampaignStats, wsn_telemetry::Snapshot), String> {
    let spawned = !cli.merge_only;
    if spawned {
        if let Err(msg) = spawn_workers(cfg, shards, shard_dir, cli) {
            cleanup_shard_files(shard_dir, shards);
            return Err(msg);
        }
    }
    let result = merge_shard_files(cfg, kind, shards, shard_dir);
    if result.is_err() && spawned {
        cleanup_shard_files(shard_dir, shards);
    }
    result
}

fn baseline_path(cli: &Cli) -> PathBuf {
    if let Some(path) = &cli.checksum_baseline {
        return path.clone();
    }
    let repo_relative = PathBuf::from("crates/bench/baselines/robustness_checksums.json");
    if repo_relative.exists() {
        return repo_relative;
    }
    // Fall back to the compile-time crate location so the gate also works
    // when invoked from outside the repo root.
    PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/baselines/robustness_checksums.json"
    ))
}

fn print_table(rows: &[fttt_bench::robustness::CampaignRow], cfg: &CampaignConfig) {
    let mut table = Table::new(
        format!(
            "Fault campaign ({} trials x {} s, {} nodes, seed {})",
            cfg.trials, cfg.duration, cfg.nodes, cfg.seed
        ),
        &[
            "regime",
            "rate",
            "method",
            "mean err (m)",
            "worst (m)",
            "lost",
            "degraded",
            "recovered",
            "mean k",
        ],
    );
    for r in rows {
        table.row(&[
            r.regime.clone(),
            r.fault_rate
                .map_or_else(|| "-".into(), |v| format!("{v:.1}")),
            r.method.to_string(),
            format!("{:.2}", r.mean_error),
            format!("{:.2}", r.worst_error),
            format!("{:.1}%", 100.0 * r.lost_fraction),
            format!("{:.1}%", 100.0 * r.degraded_fraction),
            format!(
                "{}/{}",
                (r.recovery_rate * r.trials_lost as f64).round(),
                r.trials_lost
            ),
            format!("{:.2}", r.mean_samples),
        ]);
    }
    table.print();
}
