//! The fault campaign: sweeps fault regimes × session-wrapped trackers,
//! prints the degradation table, writes `BENCH_robustness.json` and exits
//! non-zero on any graceful-degradation envelope violation.
//!
//! Usage: `fault_campaign [--seed N] [--trials N] [--fast]`
//! (`--fast` runs the reduced tier-1 smoke workload).

use fttt_bench::robustness::{
    campaign_field_side, check_envelopes, render_json, run_campaign, CampaignConfig,
};
use fttt_bench::{Cli, Table};

fn main() {
    let cli = Cli::parse();
    let mut cfg = if cli.fast {
        CampaignConfig::fast(cli.seed)
    } else {
        CampaignConfig::full(cli.seed)
    };
    if let Some(trials) = cli.trials {
        cfg.trials = trials.max(1);
    }
    let registry = std::sync::Arc::new(wsn_telemetry::Registry::new());
    wsn_telemetry::install(std::sync::Arc::clone(&registry));
    let rows = run_campaign(&cfg);
    wsn_telemetry::uninstall();
    let metrics = registry.snapshot();
    let mut table = Table::new(
        format!(
            "Fault campaign ({} trials x {} s, {} nodes, seed {})",
            cfg.trials, cfg.duration, cfg.nodes, cfg.seed
        ),
        &[
            "regime",
            "rate",
            "method",
            "mean err (m)",
            "worst (m)",
            "lost",
            "degraded",
            "recovered",
            "mean k",
        ],
    );
    for r in &rows {
        table.row(&[
            r.regime.clone(),
            r.fault_rate
                .map_or_else(|| "-".into(), |v| format!("{v:.1}")),
            r.method.to_string(),
            format!("{:.2}", r.mean_error),
            format!("{:.2}", r.worst_error),
            format!("{:.1}%", 100.0 * r.lost_fraction),
            format!("{:.1}%", 100.0 * r.degraded_fraction),
            format!(
                "{}/{}",
                (r.recovery_rate * r.trials_lost as f64).round(),
                r.trials_lost
            ),
            format!("{:.2}", r.mean_samples),
        ]);
    }
    table.print();

    let violations = check_envelopes(&rows, campaign_field_side(&cfg));
    let json = render_json(&rows, &cfg, &violations, Some(&metrics));
    let path = "BENCH_robustness.json";
    std::fs::write(path, json).expect("write BENCH_robustness.json");
    println!("\nwrote {path}");

    if violations.is_empty() {
        println!("all graceful-degradation envelopes hold");
    } else {
        eprintln!("\n{} envelope violation(s):", violations.len());
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
}
