//! `serve_load`: the tracking-server load generator and serve-bench gate.
//!
//! Drives 10⁴–10⁵ concurrent sessions against one `wsn-serve` process
//! (spawned as a sibling binary when available, otherwise hosted
//! in-process), verifies every session bit-for-bit against the in-process
//! shadow engine, and writes `BENCH_serve.json`.
//!
//! Usage:
//!
//! * `serve_load [--fast] [--sessions N] [--rounds N] [--conns N]` —
//!   run the load, print the summary, write the artifact.
//! * `serve_load --check crates/bench/baselines/serve.json [--fast]` —
//!   gate mode: compare the fresh run against the committed baseline and
//!   exit 1 on regression (correctness mismatches fail regardless).
//! * `serve_load --connect ADDR` — drive an externally started server;
//!   it must run the same `--nodes`/`--cell-size` map or the digest
//!   check will (correctly) fail.

use fttt_bench::serve::{render_serve_json, run_load, LoadConfig};
use std::io::BufRead;
use std::process::ExitCode;
use wsn_server::{Connection, Frame, Server, ServerConfig};
use wsn_telemetry::json::JsonValue;

const USAGE: &str = "serve_load — tracking-server load generator

USAGE:
    serve_load [OPTIONS]

OPTIONS:
    --sessions N      Concurrent sessions (default 10000)
    --rounds N        Rounds per session (default 5)
    --conns N         Client connections (default 8)
    --window N        In-flight pushes per connection (default 64)
    --seed N          Workload master seed (default 42)
    --shards N        Server worker shards (default 4)
    --queue-depth N   Server per-shard queue depth (default 256)
    --nodes N         Deployment size (default 10)
    --cell-size M     Face-map cell, metres (default 2.0)
    --fast            Smoke shape: 200 sessions x 3 rounds, 8-node map
    --out PATH        Artifact path (default BENCH_serve.json)
    --check BASELINE  Gate against a committed BENCH_serve.json
    --connect ADDR    Drive an already-running server instead of spawning
    --in-process      Host the server in this process (no child spawn)
    -h, --help        This help
";

struct Args {
    server: ServerConfig,
    load: LoadConfig,
    out: String,
    check: Option<String>,
    connect: Option<String>,
    in_process: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut server = ServerConfig::new(
        fttt::PaperParams::default()
            .with_nodes(10)
            .with_cell_size(2.0),
    );
    let mut load = LoadConfig::full();
    let mut out = "BENCH_serve.json".to_string();
    let mut check = None;
    let mut connect = None;
    let mut in_process = false;
    let mut fast = false;
    let mut nodes: Option<usize> = None;
    let mut cell: Option<f64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        let parse = |flag: &str, v: String| -> Result<usize, String> {
            v.parse().map_err(|e| format!("{flag}: {e}"))
        };
        match arg.as_str() {
            "--sessions" => load.sessions = parse("--sessions", value("--sessions")?)?,
            "--rounds" => load.rounds = parse("--rounds", value("--rounds")?)?,
            "--conns" => load.conns = parse("--conns", value("--conns")?)?,
            "--window" => load.window = parse("--window", value("--window")?)?,
            "--seed" => {
                load.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--shards" => server.shards = parse("--shards", value("--shards")?)?,
            "--queue-depth" => {
                server.queue_depth = parse("--queue-depth", value("--queue-depth")?)?
            }
            "--nodes" => nodes = Some(parse("--nodes", value("--nodes")?)?),
            "--cell-size" => {
                cell = Some(
                    value("--cell-size")?
                        .parse()
                        .map_err(|e| format!("--cell-size: {e}"))?,
                )
            }
            "--fast" => fast = true,
            "--out" => out = value("--out")?,
            "--check" => check = Some(value("--check")?),
            "--connect" => connect = Some(value("--connect")?),
            "--in-process" => in_process = true,
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    if fast {
        server.params = ServerConfig::fast().params;
        let seed = load.seed;
        load = LoadConfig {
            seed,
            ..LoadConfig::fast()
        };
    }
    if let Some(n) = nodes {
        server.params = server.params.with_nodes(n);
    }
    if let Some(c) = cell {
        server.params = server.params.with_cell_size(c);
    }
    if server.shards == 0 || load.conns == 0 {
        return Err("--shards and --conns must be at least 1".into());
    }
    Ok(Args {
        server,
        load,
        out,
        check,
        connect,
        in_process,
    })
}

/// Where the server under test lives for the duration of the run.
enum Target {
    /// A spawned sibling `wsn-serve` child (shut down via the wire).
    Child(std::process::Child),
    /// A server hosted in this process.
    InProcess(Server),
    /// Someone else's server; left running.
    External,
}

/// Spawns the sibling `wsn-serve` binary and parses its `LISTENING` line.
fn spawn_sibling(server: &ServerConfig) -> Result<(String, std::process::Child), String> {
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let sibling = exe
        .parent()
        .ok_or("own executable has no parent directory")?
        .join("wsn-serve");
    if !sibling.exists() {
        return Err(format!("{} not built", sibling.display()));
    }
    let mut child = std::process::Command::new(&sibling)
        .args(["--listen", "127.0.0.1:0"])
        .args(["--shards", &server.shards.to_string()])
        .args(["--queue-depth", &server.queue_depth.to_string()])
        .args(["--nodes", &server.params.nodes.to_string()])
        .args(["--cell-size", &server.params.cell_size.to_string()])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", sibling.display()))?;
    let stdout = child.stdout.take().ok_or("no child stdout")?;
    let mut line = String::new();
    std::io::BufReader::new(stdout)
        .read_line(&mut line)
        .map_err(|e| format!("read child banner: {e}"))?;
    let addr = line
        .trim()
        .strip_prefix("LISTENING ")
        .ok_or_else(|| format!("unexpected child banner {line:?}"))?
        .to_string();
    Ok((addr, child))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("serve_load: {msg}");
            return ExitCode::FAILURE;
        }
    };
    // A bad artifact path or unreadable baseline must fail before the
    // load runs, not after.
    if args.check.is_none() {
        if let Err(msg) = wsn_telemetry::ensure_writable_file(std::path::Path::new(&args.out)) {
            eprintln!("serve_load: --out: {msg}");
            return ExitCode::FAILURE;
        }
    }
    let baseline = match &args.check {
        None => None,
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => match JsonValue::parse(&text) {
                Ok(doc) => Some(doc),
                Err(e) => {
                    eprintln!("serve_load: parse baseline {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("serve_load: read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };

    let (addr, mut target) = if let Some(addr) = args.connect.clone() {
        (addr, Target::External)
    } else if args.in_process {
        match Server::bind("127.0.0.1:0", args.server.clone()) {
            Ok(s) => (s.local_addr().to_string(), Target::InProcess(s)),
            Err(e) => {
                eprintln!("serve_load: bind in-process server: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match spawn_sibling(&args.server) {
            Ok((addr, child)) => (addr, Target::Child(child)),
            Err(msg) => {
                eprintln!("serve_load: no wsn-serve sibling ({msg}); hosting in-process");
                match Server::bind("127.0.0.1:0", args.server.clone()) {
                    Ok(s) => (s.local_addr().to_string(), Target::InProcess(s)),
                    Err(e) => {
                        eprintln!("serve_load: bind in-process server: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
    };

    println!(
        "driving {} sessions x {} rounds over {} conns at {addr}",
        args.load.sessions, args.load.rounds, args.load.conns
    );
    let result = run_load(&addr, &args.server, &args.load);

    // Tear the server down before judging the result so a failed run
    // doesn't leak a child process.
    match &mut target {
        Target::Child(child) => {
            let shutdown =
                Connection::connect(addr.as_str()).and_then(|mut c| c.send(&Frame::Shutdown));
            if shutdown.is_err() {
                let _ = child.kill();
            }
            let _ = child.wait();
        }
        Target::InProcess(server) => server.shutdown(),
        Target::External => {}
    }

    let report = match result {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("serve_load: load run failed: {msg}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "opens {:.0}/s, rounds {:.0}/s, round p50 {:.0} us, p99 {:.0} us, \
         {} digests checked ({} mismatched, {} result mismatches, {} sheds retried)",
        report.open_per_sec,
        report.rounds_per_sec,
        report.round_p50_us,
        report.round_p99_us,
        report.digest_checked,
        report.digest_mismatches,
        report.result_mismatches,
        report.shed_retries
    );

    let json = render_serve_json(&args.server, &args.load, &report);
    if let Some(base) = baseline {
        let fresh = JsonValue::parse(&json).expect("own artifact parses");
        match fttt_bench::gate::check_serve(&fresh, &base) {
            Ok(violations) if violations.is_empty() => {
                println!(
                    "serve gate: PASS against {}",
                    args.check.as_deref().unwrap()
                );
                ExitCode::SUCCESS
            }
            Ok(violations) => {
                eprintln!("serve gate: {} violation(s):", violations.len());
                for v in &violations {
                    eprintln!("  - {v}");
                }
                ExitCode::FAILURE
            }
            Err(msg) => {
                eprintln!("serve gate: {msg}");
                ExitCode::FAILURE
            }
        }
    } else {
        if report.digest_mismatches > 0 || report.result_mismatches > 0 {
            eprintln!(
                "serve_load: CORRECTNESS FAILURE — server results diverged from the \
                 in-process engine"
            );
            return ExitCode::FAILURE;
        }
        if let Err(e) = std::fs::write(&args.out, json) {
            eprintln!("serve_load: write {}: {e}", args.out);
            return ExitCode::FAILURE;
        }
        println!("wrote {}", args.out);
        ExitCode::SUCCESS
    }
}
