//! `serve_load`: the tracking-server load generator and serve-bench gate.
//!
//! Drives 10⁴–10⁵ concurrent sessions against one `wsn-serve` process
//! (spawned as a sibling binary when available, otherwise hosted
//! in-process), verifies every session bit-for-bit against the in-process
//! shadow engine, and writes `BENCH_serve.json`.
//!
//! Usage:
//!
//! * `serve_load [--fast] [--sessions N] [--rounds N] [--conns N]` —
//!   run the load, print the summary, write the artifact.
//! * `serve_load --check crates/bench/baselines/serve.json [--fast]` —
//!   gate mode: compare the fresh run against the committed baseline and
//!   exit 1 on regression (correctness mismatches fail regardless).
//! * `serve_load --connect ADDR` — drive an externally started server;
//!   it must run the same `--nodes`/`--cell-size` map or the digest
//!   check will (correctly) fail.

use fttt_bench::serve::{render_serve_json, run_load, LoadConfig};
use std::io::BufRead;
use std::process::ExitCode;
use wsn_server::{Connection, Frame, Server, ServerConfig};
use wsn_telemetry::json::JsonValue;

const USAGE: &str = "serve_load — tracking-server load generator

USAGE:
    serve_load [OPTIONS]

OPTIONS:
    --sessions N      Concurrent sessions (default 10000)
    --rounds N        Rounds per session (default 5)
    --conns N         Client connections (default 8)
    --window N        In-flight pushes per connection (default 64)
    --seed N          Workload master seed (default 42)
    --shards N        Server worker shards (default 4)
    --queue-depth N   Server per-shard queue depth (default 256)
    --nodes N         Deployment size (default 10)
    --cell-size M     Face-map cell, metres (default 2.0)
    --fast            Smoke shape: 200 sessions x 3 rounds, 8-node map
    --out PATH        Artifact path (default BENCH_serve.json)
    --check BASELINE  Gate against a committed BENCH_serve.json
    --connect ADDR    Drive an already-running server instead of spawning
    --in-process      Host the server in this process (no child spawn)
    --trace-out PATH  Write the client trace journal (JSONL); pushes are
                      sent as traced v2 frames whose ids the server echoes
                      and journals, for fttt-sim explain --correlate
    --ops-check       Also stand up / scrape the HTTP ops plane: verify
                      /metrics parses and its counters advance across the
                      run, and /healthz reports every shard healthy
    --ops ADDR        Ops address to scrape (required with --connect
                      --ops-check; ignored otherwise)
    --shutdown ADDR   Send one clean Shutdown frame to a running server and
                      exit; the server flushes --trace-out/--metrics-out on
                      the way down (signals kill it without flushing)
    -h, --help        This help
";

struct Args {
    server: ServerConfig,
    load: LoadConfig,
    out: String,
    check: Option<String>,
    connect: Option<String>,
    in_process: bool,
    trace_out: Option<String>,
    ops_check: bool,
    ops: Option<String>,
    shutdown: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut server = ServerConfig::new(
        fttt::PaperParams::default()
            .with_nodes(10)
            .with_cell_size(2.0),
    );
    let mut load = LoadConfig::full();
    let mut out = "BENCH_serve.json".to_string();
    let mut check = None;
    let mut connect = None;
    let mut in_process = false;
    let mut trace_out = None;
    let mut ops_check = false;
    let mut ops = None;
    let mut shutdown = None;
    let mut fast = false;
    let mut nodes: Option<usize> = None;
    let mut cell: Option<f64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| args.next().ok_or_else(|| format!("{flag} needs a value"));
        let parse = |flag: &str, v: String| -> Result<usize, String> {
            v.parse().map_err(|e| format!("{flag}: {e}"))
        };
        match arg.as_str() {
            "--sessions" => load.sessions = parse("--sessions", value("--sessions")?)?,
            "--rounds" => load.rounds = parse("--rounds", value("--rounds")?)?,
            "--conns" => load.conns = parse("--conns", value("--conns")?)?,
            "--window" => load.window = parse("--window", value("--window")?)?,
            "--seed" => {
                load.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--shards" => server.shards = parse("--shards", value("--shards")?)?,
            "--queue-depth" => {
                server.queue_depth = parse("--queue-depth", value("--queue-depth")?)?
            }
            "--nodes" => nodes = Some(parse("--nodes", value("--nodes")?)?),
            "--cell-size" => {
                cell = Some(
                    value("--cell-size")?
                        .parse()
                        .map_err(|e| format!("--cell-size: {e}"))?,
                )
            }
            "--fast" => fast = true,
            "--out" => out = value("--out")?,
            "--check" => check = Some(value("--check")?),
            "--connect" => connect = Some(value("--connect")?),
            "--in-process" => in_process = true,
            "--trace-out" => trace_out = Some(value("--trace-out")?),
            "--ops-check" => ops_check = true,
            "--ops" => ops = Some(value("--ops")?),
            "--shutdown" => shutdown = Some(value("--shutdown")?),
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    if fast {
        server.params = ServerConfig::fast().params;
        let seed = load.seed;
        load = LoadConfig {
            seed,
            ..LoadConfig::fast()
        };
    }
    if let Some(n) = nodes {
        server.params = server.params.with_nodes(n);
    }
    if let Some(c) = cell {
        server.params = server.params.with_cell_size(c);
    }
    if server.shards == 0 || load.conns == 0 {
        return Err("--shards and --conns must be at least 1".into());
    }
    if ops_check && connect.is_some() && ops.is_none() {
        return Err("--ops-check with --connect needs --ops ADDR to scrape".into());
    }
    load.trace = trace_out.is_some();
    Ok(Args {
        server,
        load,
        out,
        check,
        connect,
        in_process,
        trace_out,
        ops_check,
        ops,
        shutdown,
    })
}

/// Where the server under test lives for the duration of the run.
enum Target {
    /// A spawned sibling `wsn-serve` child (shut down via the wire).
    Child(std::process::Child),
    /// A server hosted in this process.
    InProcess(Server),
    /// Someone else's server; left running.
    External,
}

/// Spawns the sibling `wsn-serve` binary and parses its `LISTENING` line
/// (plus the `OPS LISTENING` line when `ops` asks for the ops plane).
fn spawn_sibling(
    server: &ServerConfig,
    ops: bool,
) -> Result<(String, Option<String>, std::process::Child), String> {
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let sibling = exe
        .parent()
        .ok_or("own executable has no parent directory")?
        .join("wsn-serve");
    if !sibling.exists() {
        return Err(format!("{} not built", sibling.display()));
    }
    let mut cmd = std::process::Command::new(&sibling);
    cmd.args(["--listen", "127.0.0.1:0"])
        .args(["--shards", &server.shards.to_string()])
        .args(["--queue-depth", &server.queue_depth.to_string()])
        .args(["--nodes", &server.params.nodes.to_string()])
        .args(["--cell-size", &server.params.cell_size.to_string()])
        .stdout(std::process::Stdio::piped());
    if ops {
        cmd.args(["--ops-listen", "127.0.0.1:0"]);
    }
    let mut child = cmd
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", sibling.display()))?;
    let stdout = child.stdout.take().ok_or("no child stdout")?;
    let mut reader = std::io::BufReader::new(stdout);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read child banner: {e}"))?;
    let addr = line
        .trim()
        .strip_prefix("LISTENING ")
        .ok_or_else(|| format!("unexpected child banner {line:?}"))?
        .to_string();
    let ops_addr = if ops {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("read child ops banner: {e}"))?;
        Some(
            line.trim()
                .strip_prefix("OPS LISTENING ")
                .ok_or_else(|| format!("unexpected child ops banner {line:?}"))?
                .to_string(),
        )
    } else {
        None
    };
    Ok((addr, ops_addr, child))
}

/// One minimal HTTP/1.1 GET against the ops plane; returns (status, body).
fn http_get(addr: &str, path: &str) -> Result<(u16, String), String> {
    use std::io::{Read, Write};
    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(5)));
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: wsn-ops\r\nConnection: close\r\n\r\n"
    )
    .map_err(|e| format!("send GET {path}: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("read GET {path} reply: {e}"))?;
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed reply to GET {path}"))?;
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    Ok((status, body))
}

/// The first sample value of `series` in Prometheus exposition text.
fn prom_value(text: &str, series: &str) -> Option<f64> {
    text.lines().find_map(|l| {
        let rest = l.strip_prefix(series)?;
        rest.strip_prefix(' ')?
            .split_whitespace()
            .next()?
            .parse()
            .ok()
    })
}

/// Scrapes `/metrics` (must be valid exposition text) and `/healthz`
/// (must be 200 = every shard healthy); returns the served-rounds counter.
fn ops_scrape(addr: &str) -> Result<f64, String> {
    let (code, metrics) = http_get(addr, "/metrics")?;
    if code != 200 {
        return Err(format!("/metrics returned {code}"));
    }
    if let Err((line, why)) = wsn_telemetry::validate_prometheus_text(&metrics) {
        return Err(format!("/metrics line {line} is invalid: {why}"));
    }
    let rounds = prom_value(&metrics, "fttt_server_rounds").unwrap_or(0.0);
    let (code, health) = http_get(addr, "/healthz")?;
    if code != 200 {
        return Err(format!("/healthz returned {code}: {}", health.trim()));
    }
    Ok(rounds)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("serve_load: {msg}");
            return ExitCode::FAILURE;
        }
    };
    // Stop-a-server mode: one Shutdown frame over the wire is the only
    // way a `wsn-serve` flushes its journal/metrics (it has no signal
    // handler), so ship it and exit without running any load.
    if let Some(addr) = &args.shutdown {
        return match Connection::connect(addr.as_str())
            .and_then(|mut conn| conn.send(&Frame::Shutdown))
        {
            Ok(()) => {
                println!("sent shutdown to {addr}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("serve_load: --shutdown {addr}: {e}");
                ExitCode::FAILURE
            }
        };
    }

    // A bad artifact path or unreadable baseline must fail before the
    // load runs, not after.
    if args.check.is_none() {
        if let Err(msg) = wsn_telemetry::ensure_writable_file(std::path::Path::new(&args.out)) {
            eprintln!("serve_load: --out: {msg}");
            return ExitCode::FAILURE;
        }
    }
    let baseline = match &args.check {
        None => None,
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => match JsonValue::parse(&text) {
                Ok(doc) => Some(doc),
                Err(e) => {
                    eprintln!("serve_load: parse baseline {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("serve_load: read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
    };

    // Traced pushes feed a client-side journal that `fttt-sim explain
    // --correlate` joins against the server's.
    let journal = args.trace_out.as_ref().map(|path| {
        if let Err(msg) = wsn_telemetry::ensure_writable_file(std::path::Path::new(path)) {
            eprintln!("serve_load: --trace-out: {msg}");
            std::process::exit(1);
        }
        let journal = std::sync::Arc::new(wsn_telemetry::Journal::new());
        wsn_telemetry::install_journal(std::sync::Arc::clone(&journal));
        journal
    });

    let mut ops_handle: Option<wsn_server::OpsHandle> = None;
    let in_process_bind = |ops_handle: &mut Option<wsn_server::OpsHandle>| {
        let server = Server::bind("127.0.0.1:0", args.server.clone())
            .map_err(|e| format!("bind in-process server: {e}"))?;
        let ops_addr = if args.ops_check {
            let handle = server
                .serve_ops("127.0.0.1:0")
                .map_err(|e| format!("{e}"))?;
            let addr = handle.local_addr().to_string();
            *ops_handle = Some(handle);
            Some(addr)
        } else {
            None
        };
        Ok::<_, String>((server.local_addr().to_string(), ops_addr, server))
    };
    let (addr, ops_addr, mut target) = if let Some(addr) = args.connect.clone() {
        (addr, args.ops.clone(), Target::External)
    } else if args.in_process {
        match in_process_bind(&mut ops_handle) {
            Ok((addr, ops_addr, s)) => (addr, ops_addr, Target::InProcess(s)),
            Err(e) => {
                eprintln!("serve_load: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        match spawn_sibling(&args.server, args.ops_check) {
            Ok((addr, ops_addr, child)) => (addr, ops_addr, Target::Child(child)),
            Err(msg) => {
                eprintln!("serve_load: no wsn-serve sibling ({msg}); hosting in-process");
                match in_process_bind(&mut ops_handle) {
                    Ok((addr, ops_addr, s)) => (addr, ops_addr, Target::InProcess(s)),
                    Err(e) => {
                        eprintln!("serve_load: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
    };

    let rounds_before = if args.ops_check {
        let ops = ops_addr.as_deref().expect("ops address resolved above");
        match ops_scrape(ops) {
            Ok(rounds) => {
                println!("ops plane at {ops}: healthy before load");
                Some(rounds)
            }
            Err(msg) => {
                eprintln!("serve_load: ops check (before load): {msg}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    println!(
        "driving {} sessions x {} rounds over {} conns at {addr}",
        args.load.sessions, args.load.rounds, args.load.conns
    );
    let result = run_load(&addr, &args.server, &args.load);

    // Scrape again while the server is still up: the counters must have
    // advanced by the run just driven and every shard must still be live.
    let mut ops_failure: Option<String> = None;
    if let Some(before) = rounds_before {
        let ops = ops_addr.as_deref().expect("ops address resolved above");
        match ops_scrape(ops) {
            Ok(after) if after > before => {
                println!(
                    "ops plane at {ops}: healthy after load, \
                     fttt_server_rounds {before} -> {after}"
                );
            }
            Ok(after) => {
                ops_failure = Some(format!(
                    "fttt_server_rounds did not advance across the run \
                     ({before} -> {after})"
                ));
            }
            Err(msg) => ops_failure = Some(format!("after load: {msg}")),
        }
    }
    ops_handle.take();

    // Tear the server down before judging the result so a failed run
    // doesn't leak a child process.
    match &mut target {
        Target::Child(child) => {
            let shutdown =
                Connection::connect(addr.as_str()).and_then(|mut c| c.send(&Frame::Shutdown));
            if shutdown.is_err() {
                let _ = child.kill();
            }
            let _ = child.wait();
        }
        Target::InProcess(server) => server.shutdown(),
        Target::External => {}
    }

    if let Some(path) = &args.trace_out {
        wsn_telemetry::uninstall_journal();
        let log = journal
            .expect("journal installed with --trace-out")
            .snapshot();
        if let Err(msg) =
            wsn_telemetry::write_file_atomic(std::path::Path::new(path), log.to_jsonl().as_bytes())
        {
            eprintln!("serve_load: {msg}");
            return ExitCode::FAILURE;
        }
        println!("wrote client trace {path}");
    }
    if let Some(msg) = ops_failure {
        eprintln!("serve_load: ops check failed: {msg}");
        return ExitCode::FAILURE;
    }

    let report = match result {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("serve_load: load run failed: {msg}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "opens {:.0}/s, rounds {:.0}/s, round p50 {:.0} us, p99 {:.0} us, \
         {} digests checked ({} mismatched, {} result mismatches, {} sheds retried)",
        report.open_per_sec,
        report.rounds_per_sec,
        report.round_p50_us,
        report.round_p99_us,
        report.digest_checked,
        report.digest_mismatches,
        report.result_mismatches,
        report.shed_retries
    );

    let json = render_serve_json(&args.server, &args.load, &report);
    if let Some(base) = baseline {
        let fresh = JsonValue::parse(&json).expect("own artifact parses");
        match fttt_bench::gate::check_serve(&fresh, &base) {
            Ok(violations) if violations.is_empty() => {
                println!(
                    "serve gate: PASS against {}",
                    args.check.as_deref().unwrap()
                );
                ExitCode::SUCCESS
            }
            Ok(violations) => {
                eprintln!("serve gate: {} violation(s):", violations.len());
                for v in &violations {
                    eprintln!("  - {v}");
                }
                ExitCode::FAILURE
            }
            Err(msg) => {
                eprintln!("serve gate: {msg}");
                ExitCode::FAILURE
            }
        }
    } else {
        if report.digest_mismatches > 0 || report.result_mismatches > 0 {
            eprintln!(
                "serve_load: CORRECTNESS FAILURE — server results diverged from the \
                 in-process engine"
            );
            return ExitCode::FAILURE;
        }
        if let Err(e) = std::fs::write(&args.out, json) {
            eprintln!("serve_load: write {}: {e}", args.out);
            return ExitCode::FAILURE;
        }
        println!("wrote {}", args.out);
        ExitCode::SUCCESS
    }
}
