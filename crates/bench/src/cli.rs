//! Minimal argument parsing shared by the experiment binaries.

/// Common experiment options, parsed from `std::env::args`:
/// `--seed <u64>` (default 42), `--trials <usize>` (default
/// binary-specific), `--out <dir>` (default `results/`), `--fast`
/// (binary-specific reduced workload for smoke runs), `--check <FILE>`
/// (regression-gate mode against a committed baseline; honored by
/// `perf_snapshot`, ignored by the figure binaries).
#[derive(Debug, Clone)]
pub struct Cli {
    /// Master RNG seed; every trial derives from it deterministically.
    pub seed: u64,
    /// Number of Monte-Carlo trials per sweep point (`None`: binary picks).
    pub trials: Option<usize>,
    /// Output directory for CSV dumps.
    pub out: std::path::PathBuf,
    /// Reduced workload for smoke testing.
    pub fast: bool,
    /// Baseline artifact to gate the run against instead of writing a new
    /// one (see [`crate::gate`]).
    pub check: Option<std::path::PathBuf>,
    /// Shard count for the multi-process campaign runner (`fault_campaign`
    /// only; 1 = single-process).
    pub shards: usize,
    /// When set, run only this shard's trial subset and write a shard file
    /// instead of the merged artifact. When unset with `shards > 1`, act
    /// as the coordinator: spawn one child per shard and merge.
    pub shard_id: Option<usize>,
    /// Directory for shard files (default: `<out>/shards`).
    pub shard_dir: Option<std::path::PathBuf>,
    /// Coordinator mode without spawning workers: merge whatever shard
    /// files already sit in `--shard-dir` (`fault_campaign` only). Used
    /// to re-merge a finished run and to exercise the corrupt-shard
    /// failure paths without paying for the trials.
    pub merge_only: bool,
    /// Golden-checksum gate: recompute the campaign checksum and compare
    /// against the committed baseline instead of writing artifacts; exit
    /// non-zero on drift.
    pub check_determinism: bool,
    /// Run the live-topology-churn campaign (three map-repair policies
    /// under a death/birth storm) instead of the built-in sweep
    /// (`fault_campaign` only).
    pub churn: bool,
    /// Override for the golden-checksum baseline path (default:
    /// `crates/bench/baselines/robustness_checksums.json`).
    pub checksum_baseline: Option<std::path::PathBuf>,
}

impl Default for Cli {
    fn default() -> Self {
        Self {
            seed: 42,
            trials: None,
            out: "results".into(),
            fast: false,
            check: None,
            shards: 1,
            shard_id: None,
            shard_dir: None,
            merge_only: false,
            check_determinism: false,
            churn: false,
            checksum_baseline: None,
        }
    }
}

impl Cli {
    /// Parses the process arguments.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments.
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut cli = Self::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--seed" => {
                    let v = it.next().expect("--seed needs a value");
                    cli.seed = v.parse().expect("--seed must be a u64");
                }
                "--trials" => {
                    let v = it.next().expect("--trials needs a value");
                    cli.trials = Some(v.parse().expect("--trials must be a usize"));
                }
                "--out" => {
                    cli.out = it.next().expect("--out needs a value").into();
                }
                "--fast" => cli.fast = true,
                "--check" => {
                    cli.check = Some(it.next().expect("--check needs a baseline path").into());
                }
                "--shards" => {
                    let v = it.next().expect("--shards needs a value");
                    cli.shards = v.parse().expect("--shards must be a positive usize");
                    assert!(cli.shards > 0, "--shards must be at least 1");
                }
                "--shard-id" => {
                    let v = it.next().expect("--shard-id needs a value");
                    cli.shard_id = Some(v.parse().expect("--shard-id must be a usize"));
                }
                "--shard-dir" => {
                    cli.shard_dir = Some(it.next().expect("--shard-dir needs a value").into());
                }
                "--merge-only" => cli.merge_only = true,
                "--check-determinism" => cli.check_determinism = true,
                "--churn" => cli.churn = true,
                "--checksum-baseline" => {
                    cli.checksum_baseline = Some(
                        it.next()
                            .expect("--checksum-baseline needs a baseline path")
                            .into(),
                    );
                }
                other => panic!(
                    "unknown argument {other}; usage: [--seed N] [--trials N] [--out DIR] \
                     [--fast] [--churn] [--check BASELINE.json] [--shards N [--shard-id I]] \
                     [--shard-dir DIR] [--merge-only] [--check-determinism] \
                     [--checksum-baseline FILE]"
                ),
            }
        }
        cli
    }

    /// The trial count to use given a binary default.
    pub fn trials_or(&self, default: usize) -> usize {
        let t = self.trials.unwrap_or(default);
        if self.fast {
            t.div_ceil(4).max(1)
        } else {
            t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Cli {
        Cli::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let c = parse(&[]);
        assert_eq!(c.seed, 42);
        assert_eq!(c.trials, None);
        assert!(!c.fast);
        assert_eq!(c.trials_or(10), 10);
    }

    #[test]
    fn explicit_values() {
        let c = parse(&["--seed", "7", "--trials", "3", "--out", "/tmp/x", "--fast"]);
        assert_eq!(c.seed, 7);
        assert_eq!(c.trials, Some(3));
        assert_eq!(c.out, std::path::PathBuf::from("/tmp/x"));
        assert!(c.fast);
        assert!(c.check.is_none());
        assert_eq!(c.trials_or(10), 1);
    }

    #[test]
    fn check_takes_a_baseline_path() {
        let c = parse(&["--check", "baselines/core.json"]);
        assert_eq!(
            c.check,
            Some(std::path::PathBuf::from("baselines/core.json"))
        );
    }

    #[test]
    fn fast_divides_defaults() {
        let c = parse(&["--fast"]);
        assert_eq!(c.trials_or(20), 5);
    }

    #[test]
    #[should_panic(expected = "unknown argument")]
    fn unknown_flag_rejected() {
        let _ = parse(&["--nope"]);
    }

    #[test]
    fn shard_and_determinism_flags_parse() {
        let c = parse(&[
            "--shards",
            "4",
            "--shard-id",
            "2",
            "--shard-dir",
            "/tmp/shards",
            "--check-determinism",
            "--checksum-baseline",
            "b.json",
        ]);
        assert_eq!(c.shards, 4);
        assert_eq!(c.shard_id, Some(2));
        assert_eq!(c.shard_dir, Some(std::path::PathBuf::from("/tmp/shards")));
        assert!(c.check_determinism);
        assert_eq!(
            c.checksum_baseline,
            Some(std::path::PathBuf::from("b.json"))
        );
        // Defaults stay single-process.
        let d = parse(&[]);
        assert_eq!(d.shards, 1);
        assert_eq!(d.shard_id, None);
        assert!(!d.check_determinism);
        assert!(!d.churn);
        assert!(!d.merge_only);
    }

    #[test]
    fn merge_only_flag_parses() {
        assert!(parse(&["--shards", "2", "--merge-only"]).merge_only);
    }

    #[test]
    fn churn_flag_parses() {
        assert!(parse(&["--churn"]).churn);
    }

    #[test]
    #[should_panic(expected = "--shards must be at least 1")]
    fn zero_shards_rejected() {
        let _ = parse(&["--shards", "0"]);
    }
}
