//! Plain-text table rendering for experiment output.

use std::fmt::Write as _;

/// A simple right-aligned text table, printed to stdout and optionally
/// collected as CSV.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the column count).
    ///
    /// # Panics
    ///
    /// Panics on a column-count mismatch.
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.columns.len(), "row/column count mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience: formats every cell with `Display`.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(|c| c.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let header: Vec<String> = self
            .columns
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect();
        let _ = writeln!(out, "{}", header.join("  "));
        let _ = writeln!(out, "{}", "-".repeat(header.join("  ").len()));
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            let _ = writeln!(out, "{}", line.join("  "));
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Renders the table as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.columns.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Writes the CSV form to `path`, creating parent directories.
    ///
    /// # Panics
    ///
    /// Panics on I/O failure (experiment binaries want loud failures).
    pub fn write_csv(&self, path: &std::path::Path) {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent).expect("create results directory");
        }
        std::fs::write(path, self.to_csv()).expect("write CSV");
        eprintln!("[csv] {}", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["n", "mean"]);
        t.row(&["5".into(), "12.25".into()]);
        t.row(&["40".into(), "3.5".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains(" n"));
        let lines: Vec<&str> = s.lines().collect();
        // Header + rule + 2 rows.
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn csv_round_trip() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn wrong_arity_rejected() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only one".into()]);
    }
}
