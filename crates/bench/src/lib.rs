//! Experiment harness for regenerating every table and figure of the
//! paper's evaluation (Section 7), plus the ablations listed in DESIGN.md.
//!
//! The binaries in `src/bin/` are thin: scenario definitions and row
//! printing live here so that every figure runs through the same
//! simulation code path ([`run_once`]) and the same seeded parallel trial
//! runner ([`trial_stats`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod gate;
pub mod replay;
pub mod robustness;
pub mod scenario;
pub mod serve;
pub mod table;

pub use cli::Cli;
pub use scenario::{run_once, trial_stats, MethodKind, Scenario, TrialAggregate};
pub use table::Table;
