//! Shared simulation path for every experiment.

use fttt::config::PaperParams;
use fttt::tracker::{Tracker, TrackerOptions, TrackingRun};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wsn_baselines::{DirectMle, ExtendedKalman, ParticleFilter, PathMatching, WeightedCentroid};
use wsn_network::{FaultModel, SensorField};
use wsn_parallel::{par_map, seed_for};

/// The tracking strategies under comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodKind {
    /// Basic FTTT (ternary vectors, exhaustive ML matching).
    FtttBasic,
    /// Extended FTTT (Section 6 quantitative vectors).
    FtttExtended,
    /// Basic FTTT with the heuristic matcher (Algorithm 2).
    FtttHeuristic,
    /// Path matching with MLE under a max-velocity constraint ([22]).
    Pm,
    /// Direct one-shot sequence MLE ([24]).
    DirectMle,
    /// Weighted centroid localization (classic range-free baseline).
    Wcl,
    /// Bootstrap particle filter (the model-based comparator class).
    ParticleFilter,
    /// Extended Kalman filter (the recursive model-based comparator).
    Ekf,
}

impl MethodKind {
    /// Short label for table columns.
    pub fn label(self) -> &'static str {
        match self {
            MethodKind::FtttBasic => "FTTT",
            MethodKind::FtttExtended => "FTTT-ext",
            MethodKind::FtttHeuristic => "FTTT-heur",
            MethodKind::Pm => "PM",
            MethodKind::DirectMle => "DirectMLE",
            MethodKind::Wcl => "WCL",
            MethodKind::ParticleFilter => "PF",
            MethodKind::Ekf => "EKF",
        }
    }
}

/// One experiment setting: parameters, deployment shape, run length and
/// fault model.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Table-1 parameters (node count, ε, k, …).
    pub params: PaperParams,
    /// Regular grid (`true`) or uniform random (`false`) deployment.
    pub grid_deployment: bool,
    /// Trace duration in seconds (the paper simulates 60 s).
    pub duration: f64,
    /// Fault injection (default none).
    pub fault: FaultModel,
}

impl Scenario {
    /// The paper's default 60 s random-deployment scenario.
    pub fn new(params: PaperParams) -> Self {
        Self {
            params,
            grid_deployment: false,
            duration: 60.0,
            fault: FaultModel::none(),
        }
    }

    /// Switches to a regular grid deployment.
    pub fn with_grid(mut self) -> Self {
        self.grid_deployment = true;
        self
    }

    /// Sets the duration.
    pub fn with_duration(mut self, seconds: f64) -> Self {
        self.duration = seconds;
        self
    }

    /// Sets the fault model.
    pub fn with_fault(mut self, fault: FaultModel) -> Self {
        self.fault = fault;
        self
    }

    fn field(&self, rng: &mut ChaCha8Rng) -> SensorField {
        if self.grid_deployment {
            self.params.grid_field()
        } else {
            self.params.random_field(rng)
        }
    }
}

/// Runs one tracking trial of `method` under `scenario` with a fully
/// deterministic derivation from `seed` (deployment, trace and noise all
/// come from one stream, so methods compared on the same seed see the same
/// world).
pub fn run_once(scenario: &Scenario, method: MethodKind, seed: u64) -> TrackingRun {
    let params = &scenario.params;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let field = scenario.field(&mut rng);
    let trace = params.random_trace(scenario.duration, &mut rng);
    let sampler = params.sampler().with_fault(scenario.fault.clone());
    let positions = field.deployment().positions();
    match method {
        MethodKind::FtttBasic | MethodKind::FtttExtended | MethodKind::FtttHeuristic => {
            let map = params.face_map(&field);
            let options = match method {
                MethodKind::FtttBasic => TrackerOptions::default(),
                MethodKind::FtttExtended => TrackerOptions::extended(),
                _ => TrackerOptions::heuristic(),
            };
            let mut tracker = Tracker::new(map, options);
            tracker.track(&field, &sampler, &trace, &mut rng)
        }
        MethodKind::Pm => {
            let mut pm = PathMatching::new(
                &positions,
                params.rect(),
                params.cell_size,
                params.max_speed,
                params.localization_period(),
            );
            pm.track(&field, &sampler, &trace, &mut rng)
        }
        MethodKind::DirectMle => {
            let mle = DirectMle::new(&positions, params.rect(), params.cell_size);
            mle.track(&field, &sampler, &trace, &mut rng)
        }
        MethodKind::Wcl => {
            let wcl =
                WeightedCentroid::with_path_loss_degree(&positions, params.rect(), params.beta);
            wcl.track(&field, &sampler, &trace, &mut rng)
        }
        MethodKind::ParticleFilter => {
            let mut pf = ParticleFilter::new(
                &positions,
                params.rect(),
                params.model(),
                1000,
                params.max_speed,
                params.localization_period(),
            );
            pf.track(&field, &sampler, &trace, &mut rng)
        }
        MethodKind::Ekf => {
            let mut ekf = ExtendedKalman::new(
                &positions,
                params.rect(),
                params.model(),
                params.localization_period(),
            );
            ekf.track(&field, &sampler, &trace, &mut rng)
        }
    }
}

/// Mean similarity evaluations per localization of one run, `0.0` for an
/// empty run (a `0/0` division here would otherwise poison
/// [`TrialAggregate::mean_evaluated`] with NaN).
pub fn mean_evaluated_per_localization(run: &TrackingRun) -> f64 {
    if run.localizations.is_empty() {
        0.0
    } else {
        run.total_evaluated() as f64 / run.localizations.len() as f64
    }
}

/// Aggregate over Monte-Carlo trials of one sweep point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialAggregate {
    /// Number of trials.
    pub trials: usize,
    /// Mean over trials of the per-trial mean error.
    pub mean_error: f64,
    /// Mean over trials of the per-trial error standard deviation.
    pub mean_std: f64,
    /// Largest per-trial mean error (worst world).
    pub worst_mean: f64,
    /// Mean similarity evaluations per localization.
    pub mean_evaluated: f64,
}

/// Runs `trials` seeded trials of `(scenario, method)` in parallel and
/// aggregates the error statistics. Trial `i` uses
/// `seed_for(master_seed, i)`, so results are independent of thread count
/// and comparable across methods.
///
/// # Panics
///
/// Panics if `trials == 0`.
pub fn trial_stats(
    scenario: &Scenario,
    method: MethodKind,
    trials: usize,
    master_seed: u64,
) -> TrialAggregate {
    assert!(trials > 0, "need at least one trial");
    let idx: Vec<u64> = (0..trials as u64).collect();
    let per_trial: Vec<(f64, f64, f64)> = par_map(&idx, |_, &i| {
        let run = run_once(scenario, method, seed_for(master_seed, i));
        let stats = run.error_stats();
        (stats.mean, stats.std, mean_evaluated_per_localization(&run))
    });
    let n = trials as f64;
    TrialAggregate {
        trials,
        mean_error: per_trial.iter().map(|t| t.0).sum::<f64>() / n,
        mean_std: per_trial.iter().map(|t| t.1).sum::<f64>() / n,
        worst_mean: per_trial
            .iter()
            .map(|t| t.0)
            .fold(f64::NEG_INFINITY, f64::max),
        mean_evaluated: per_trial.iter().map(|t| t.2).sum::<f64>() / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_scenario() -> Scenario {
        Scenario::new(PaperParams::default().with_nodes(6).with_cell_size(4.0)).with_duration(5.0)
    }

    #[test]
    fn run_once_is_deterministic_per_seed() {
        let s = small_scenario();
        let a = run_once(&s, MethodKind::FtttBasic, 7);
        let b = run_once(&s, MethodKind::FtttBasic, 7);
        assert_eq!(a.localizations.len(), b.localizations.len());
        assert_eq!(a.errors(), b.errors());
        let c = run_once(&s, MethodKind::FtttBasic, 8);
        assert_ne!(a.errors(), c.errors(), "different seed, different world");
    }

    #[test]
    fn all_methods_run() {
        let s = small_scenario();
        for m in [
            MethodKind::FtttBasic,
            MethodKind::FtttExtended,
            MethodKind::FtttHeuristic,
            MethodKind::Pm,
            MethodKind::DirectMle,
            MethodKind::Wcl,
            MethodKind::ParticleFilter,
            MethodKind::Ekf,
        ] {
            let run = run_once(&s, m, 3);
            assert!(!run.localizations.is_empty(), "{}", m.label());
            assert!(run.error_stats().mean.is_finite());
        }
    }

    #[test]
    fn trial_stats_aggregates() {
        let s = small_scenario();
        let agg = trial_stats(&s, MethodKind::FtttBasic, 4, 11);
        assert_eq!(agg.trials, 4);
        assert!(agg.mean_error > 0.0 && agg.mean_error.is_finite());
        assert!(agg.worst_mean >= agg.mean_error);
        assert!(agg.mean_evaluated > 0.0);
    }

    #[test]
    fn empty_run_does_not_poison_evaluated_mean() {
        let empty = TrackingRun {
            localizations: Vec::new(),
        };
        let m = mean_evaluated_per_localization(&empty);
        assert_eq!(m, 0.0, "0/0 must not produce NaN, got {m}");
    }

    #[test]
    fn grid_and_random_deployments_differ() {
        let s = small_scenario();
        let g = s.clone().with_grid();
        let a = run_once(&s, MethodKind::FtttBasic, 5);
        let b = run_once(&g, MethodKind::FtttBasic, 5);
        // Same seed but different deployment ⟹ different errors.
        assert_ne!(a.errors(), b.errors());
    }
}
