//! The `serve_load` harness: drives tens of thousands of concurrent
//! tracking sessions against one `wsn-server` process and verifies every
//! one of them bit-for-bit against an in-process shadow engine.
//!
//! The workload is fully deterministic: session `i` seeds a ChaCha8
//! stream with [`seed_for`]`(seed, i)`, walks a random trace, and samples
//! the shared field along it — exactly once, up front. The same readings
//! are then (a) stepped through a local [`TrackingSession`] over the same
//! shared map to produce the *expected* per-round results and replay
//! digests, and (b) pushed over the wire. Any divergence between the two
//! is a correctness failure (`result_mismatches` / `digest_mismatches`),
//! not a performance number — [`crate::gate::check_serve`] refuses to
//! waive it regardless of baseline.
//!
//! Load shape: `conns` client connections each own `sessions / conns`
//! sessions and keep up to `window` pushes in flight (at most one per
//! session, so per-session ordering — which the digest depends on — is
//! preserved even when the server sheds a batch with `Overloaded` and the
//! harness retries it). All sessions are opened before the first round is
//! pushed and closed after the last, so the server really holds
//! `sessions` concurrent sessions for the whole measured window.

use fttt::replay::{digest_round, Digest};
use fttt::session::TrackingSession;
use fttt::tracker::Tracker;
use fttt::{FaceMap, PaperParams};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Barrier};
use std::time::Instant;
use wsn_network::replay::digest_hex;
use wsn_parallel::seed_for;
use wsn_server::{Connection, ErrorCode, Frame, ReadingRound, RoundResult, ServerConfig};
use wsn_telemetry::ArgValue;

/// Load-generator shape.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent sessions to open (all at once).
    pub sessions: usize,
    /// Rounds pushed per session, one per frame.
    pub rounds: usize,
    /// Client connections; sessions are dealt round-robin across them.
    pub conns: usize,
    /// Max in-flight pushes per connection (pipelining depth).
    pub window: usize,
    /// Master seed for the deterministic workload.
    pub seed: u64,
    /// Every `k`-th session runs the extended sampling-vector tracker
    /// (`0` = none), mirroring the campaign's basic/extended split.
    pub extended_every: usize,
    /// Send pushes as traced v2 wire frames ([`push_trace_id`]) and emit
    /// one `fttt.client.push` journal event per acked push, so a client
    /// trace can be joined against the server's journal by trace id.
    /// `false` keeps every frame bit-identical to the v1 encoding.
    pub trace: bool,
}

impl LoadConfig {
    /// The committed-baseline shape: 10⁴ concurrent sessions.
    pub fn full() -> Self {
        LoadConfig {
            sessions: 10_000,
            rounds: 5,
            conns: 8,
            window: 64,
            seed: 42,
            extended_every: 4,
            trace: false,
        }
    }

    /// A sub-second shape for smoke tests.
    pub fn fast() -> Self {
        LoadConfig {
            sessions: 200,
            rounds: 3,
            conns: 4,
            window: 16,
            seed: 42,
            extended_every: 4,
            trace: false,
        }
    }
}

/// The deterministic trace id a traced load run stamps on the push of
/// round `round` for workload session `global`: `(global+1) << 20 |
/// (round+1)`. Never zero (zero means "untraced v1"), unique per
/// (session, round), and *stable across shed retries* — a retried push
/// reuses the id, so the server-side shed and the eventual serve share
/// one correlation key.
pub fn push_trace_id(global: u64, round: usize) -> u64 {
    ((global + 1) << 20) | (round as u64 + 1)
}

/// What one load run measured and verified.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Sessions actually driven.
    pub sessions: usize,
    /// Rounds per session.
    pub rounds: usize,
    /// Client connections used.
    pub conns: usize,
    /// Session opens per second (wall clock over the open phase).
    pub open_per_sec: f64,
    /// Engine rounds per second (wall clock over the push phase).
    pub rounds_per_sec: f64,
    /// Median push round trip, µs (send → matching `Rounds` reply, under
    /// pipelined load — queue wait included).
    pub round_p50_us: f64,
    /// 99th-percentile push round trip, µs.
    pub round_p99_us: f64,
    /// Sessions whose close-time replay digest was compared.
    pub digest_checked: usize,
    /// Sessions whose server digest diverged from the shadow engine.
    pub digest_mismatches: usize,
    /// Individual rounds whose wire result diverged from the shadow.
    pub result_mismatches: usize,
    /// Pushes the server shed with `Overloaded` and the harness retried.
    pub shed_retries: u64,
    /// Total rounds served (retries excluded).
    pub rounds_total: u64,
}

/// Bit-level equality for wire results: the shadow contract is "the same
/// f64 bit patterns", which `==` on floats would weaken (NaN, -0.0).
fn bits_eq(a: &RoundResult, b: &RoundResult) -> bool {
    let opt_bits = |v: Option<f64>| v.map(f64::to_bits);
    a.round == b.round
        && a.t.to_bits() == b.t.to_bits()
        && a.x.to_bits() == b.x.to_bits()
        && a.y.to_bits() == b.y.to_bits()
        && a.status_before == b.status_before
        && a.status == b.status
        && a.cause == b.cause
        && a.face == b.face
        && opt_bits(a.similarity) == opt_bits(b.similarity)
        && a.missing_fraction.to_bits() == b.missing_fraction.to_bits()
        && a.zero_fraction.to_bits() == b.zero_fraction.to_bits()
        && a.samples == b.samples
        && a.k_after == b.k_after
        && a.flags == b.flags
}

/// One session's deterministic workload plus its shadow-engine truth.
struct SessWork {
    global: u64,
    extended: bool,
    rounds: Vec<ReadingRound>,
    /// Expected wire result per round, from the shadow session.
    expected: Vec<RoundResult>,
    /// Expected running replay digest *after* each round.
    digest_after: Vec<u64>,
    server_session: u64,
    next_round: usize,
}

/// Generates session `global`'s readings and steps them through a shadow
/// engine over the same shared map the server serves from.
fn build_work(
    params: &PaperParams,
    field: &wsn_network::SensorField,
    map: &Arc<FaceMap>,
    server: &ServerConfig,
    load: &LoadConfig,
    global: u64,
) -> SessWork {
    let mut rng = ChaCha8Rng::seed_from_u64(seed_for(load.seed, global));
    let duration = load.rounds as f64 * params.localization_period();
    let trace = params.random_trace(duration, &mut rng);
    let sampler = params.sampler();
    let points = trace.points();
    assert!(
        points.len() >= load.rounds,
        "trace too short: {} points for {} rounds",
        points.len(),
        load.rounds
    );
    let rounds: Vec<ReadingRound> = points[..load.rounds]
        .iter()
        .map(|p| ReadingRound {
            t: p.t,
            group: sampler.sample(field, p.pos, &mut rng),
        })
        .collect();

    let extended = load.extended_every > 0 && global.is_multiple_of(load.extended_every as u64);
    let tracker = Tracker::shared(Arc::clone(map), server.tracker_options(extended));
    let mut shadow = TrackingSession::new(tracker, server.session_options());
    let mut digest = Digest::new();
    let mut expected = Vec::with_capacity(load.rounds);
    let mut digest_after = Vec::with_capacity(load.rounds);
    for r in &rounds {
        let round = shadow.step(r.t, &r.group);
        digest_round(&mut digest, &round);
        expected.push(RoundResult::from_round(&round));
        digest_after.push(digest.value());
    }
    SessWork {
        global,
        extended,
        rounds,
        expected,
        digest_after,
        server_session: 0,
        next_round: 0,
    }
}

/// One load phase as seen by a connection thread: drive the connection
/// over its sessions, accumulating into the thread's stats.
type PhaseFn<'a> =
    &'a mut dyn FnMut(&mut Connection, &mut Vec<SessWork>, &mut ConnStats) -> Result<(), String>;

/// What one connection thread measured.
struct ConnStats {
    latencies_us: Vec<f64>,
    shed_retries: u64,
    result_mismatches: usize,
    digest_checked: usize,
    digest_mismatches: usize,
    rounds_total: u64,
}

fn conn_server_err(code: ErrorCode, context: u64, detail: &str) -> String {
    format!("server error {code:?} (context {context}): {detail}")
}

/// Opens this connection's sessions, pipelined `window` deep.
/// `Overloaded` sheds carry the client tag back, so a shed open is
/// simply re-sent; a burst of opens against full shard queues must
/// degrade into retries, never into a dead connection.
fn open_phase(
    conn: &mut Connection,
    work: &mut [SessWork],
    window: usize,
    stats: &mut ConnStats,
) -> Result<(), String> {
    let mut pending: VecDeque<usize> = (0..work.len()).collect();
    let mut acked = 0usize;
    let mut inflight = 0usize;
    let mut by_tag: HashMap<u64, usize> = work
        .iter()
        .enumerate()
        .map(|(i, w)| (w.global, i))
        .collect();
    while acked < work.len() {
        while inflight < window {
            let Some(i) = pending.pop_front() else { break };
            let w = &work[i];
            conn.send(&Frame::Open {
                client_tag: w.global,
                extended: w.extended,
            })
            .map_err(|e| e.to_string())?;
            inflight += 1;
        }
        match conn.recv().map_err(|e| e.to_string())? {
            Frame::OpenAck {
                client_tag,
                session,
                ..
            } => {
                let idx = by_tag
                    .remove(&client_tag)
                    .ok_or_else(|| format!("open ack for unknown tag {client_tag}"))?;
                work[idx].server_session = session;
                acked += 1;
                inflight -= 1;
            }
            Frame::Error {
                code: ErrorCode::Overloaded,
                context,
                ..
            } if by_tag.contains_key(&context) => {
                // Shed before the shard saw it; requeue the same open.
                pending.push_back(by_tag[&context]);
                stats.shed_retries += 1;
                inflight -= 1;
            }
            Frame::Error {
                code,
                context,
                detail,
            } => return Err(conn_server_err(code, context, &detail)),
            other => return Err(format!("unexpected open reply {other:?}")),
        }
    }
    Ok(())
}

/// Pushes every round of every owned session, one round per frame, with
/// at most one in-flight push per session and `window` per connection.
/// `Overloaded` sheds are retried (the shed batch never touched the
/// session, so the round sequence — and the digest — stay intact).
fn push_phase(
    conn: &mut Connection,
    work: &mut [SessWork],
    window: usize,
    traced: bool,
    stats: &mut ConnStats,
) -> Result<(), String> {
    let total_rounds: usize = work.iter().map(|w| w.rounds.len()).sum();
    let mut ready: VecDeque<usize> = (0..work.len()).collect();
    let mut inflight: HashMap<u64, (usize, Instant)> = HashMap::new();
    let mut done_rounds = 0usize;
    while done_rounds < total_rounds {
        while inflight.len() < window {
            let Some(i) = ready.pop_front() else { break };
            let w = &work[i];
            let trace = if traced {
                push_trace_id(w.global, w.next_round)
            } else {
                0
            };
            conn.send_traced(
                &Frame::Push {
                    session: w.server_session,
                    rounds: vec![w.rounds[w.next_round].clone()],
                },
                trace,
            )
            .map_err(|e| e.to_string())?;
            inflight.insert(w.server_session, (i, Instant::now()));
        }
        let (frame, trace) = conn.recv_traced().map_err(|e| e.to_string())?;
        match frame {
            Frame::Rounds {
                session,
                results,
                digest,
            } => {
                let (i, sent_at) = inflight
                    .remove(&session)
                    .ok_or_else(|| format!("rounds reply for idle session {session}"))?;
                let rtt_us = sent_at.elapsed().as_secs_f64() * 1e6;
                stats.latencies_us.push(rtt_us);
                // The client half of cross-wire correlation: same trace id
                // the server stamped on its `fttt.server.push` event.
                if traced && wsn_telemetry::journal_enabled() {
                    wsn_telemetry::trace_instant(
                        "fttt.client.push",
                        vec![
                            ("trace", ArgValue::Str(digest_hex(trace))),
                            ("session", ArgValue::U64(session)),
                            ("rounds", ArgValue::U64(results.len() as u64)),
                            ("rtt_us", ArgValue::F64(rtt_us)),
                        ],
                    );
                }
                let w = &mut work[i];
                for r in &results {
                    if !bits_eq(r, &w.expected[w.next_round]) {
                        stats.result_mismatches += 1;
                    }
                    w.next_round += 1;
                    done_rounds += 1;
                    stats.rounds_total += 1;
                }
                if digest != w.digest_after[w.next_round - 1] {
                    stats.result_mismatches += 1;
                }
                if w.next_round < w.rounds.len() {
                    ready.push_back(i);
                }
            }
            Frame::Error {
                code: ErrorCode::Overloaded,
                context,
                ..
            } => {
                let (i, _) = inflight
                    .remove(&context)
                    .ok_or_else(|| format!("shed reply for idle session {context}"))?;
                stats.shed_retries += 1;
                ready.push_back(i);
            }
            Frame::Error {
                code,
                context,
                detail,
            } => return Err(conn_server_err(code, context, &detail)),
            other => return Err(format!("unexpected push reply {other:?}")),
        }
    }
    Ok(())
}

/// Closes every owned session and checks the final replay digest.
fn close_phase(
    conn: &mut Connection,
    work: &[SessWork],
    stats: &mut ConnStats,
) -> Result<(), String> {
    for w in work {
        let (rounds, digest) = conn
            .close_session(w.server_session)
            .map_err(|e| e.to_string())?;
        stats.digest_checked += 1;
        let want = *w
            .digest_after
            .last()
            .expect("at least one round per session");
        if rounds != w.rounds.len() as u64 || digest != want {
            stats.digest_mismatches += 1;
        }
    }
    Ok(())
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Runs the full open → push → close load against a live server at
/// `addr`, which must be serving `server`'s exact configuration (the
/// shadow engine rebuilds the map from `server.params` and the digests
/// will disagree otherwise — by design).
pub fn run_load(
    addr: &str,
    server: &ServerConfig,
    load: &LoadConfig,
) -> Result<ServeReport, String> {
    assert!(load.sessions > 0 && load.rounds > 0 && load.conns > 0 && load.window > 0);
    let params = server.params;
    let field = params.grid_field();
    let map = Arc::new(params.face_map(&field));

    // Phase barriers: `conns` worker threads + this thread, which only
    // keeps wall time — so per-phase elapsed covers all connections.
    let barrier = Barrier::new(load.conns + 1);
    let mut open_elapsed = 0.0f64;
    let mut push_elapsed = 0.0f64;

    // Converts a phase panic into an error so the thread still reaches
    // its remaining barriers — a worker that vanished mid-ladder would
    // deadlock every other party on the next `wait()`.
    fn guarded<T>(f: impl FnOnce() -> Result<T, String>) -> Result<T, String> {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
            Ok(r) => r,
            Err(p) => Err(p
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| p.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "connection thread panicked".into())),
        }
    }

    let conn_results: Vec<Result<ConnStats, String>> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(load.conns);
        for c in 0..load.conns {
            let barrier = &barrier;
            let params = &params;
            let field = &field;
            let map = &map;
            handles.push(scope.spawn(move || -> Result<ConnStats, String> {
                // Deal sessions round-robin; generate workload + shadow
                // truth before any timing starts. A failure here (or in
                // any phase) is *recorded*, not returned, so the thread
                // still shows up at every barrier.
                let mut failure: Option<String> = None;
                let mut setup = match guarded(|| {
                    let work: Vec<SessWork> = (c..load.sessions)
                        .step_by(load.conns)
                        .map(|g| build_work(params, field, map, server, load, g as u64))
                        .collect();
                    let conn = Connection::connect(addr).map_err(|e| e.to_string())?;
                    Ok((work, conn))
                }) {
                    Ok(pair) => Some(pair),
                    Err(e) => {
                        failure = Some(e);
                        None
                    }
                };
                let mut stats = ConnStats {
                    latencies_us: Vec::new(),
                    shed_retries: 0,
                    result_mismatches: 0,
                    digest_checked: 0,
                    digest_mismatches: 0,
                    rounds_total: 0,
                };
                let mut phase = |f: PhaseFn| {
                    if failure.is_none() {
                        if let Some((work, conn)) = setup.as_mut() {
                            if let Err(e) = guarded(|| f(conn, work, &mut stats)) {
                                failure = Some(e);
                            }
                        }
                    }
                };
                barrier.wait(); // open starts
                phase(&mut |conn, work, stats| open_phase(conn, work, load.window, stats));
                barrier.wait(); // open ends
                barrier.wait(); // push starts
                phase(&mut |conn, work, stats| {
                    push_phase(conn, work, load.window, load.trace, stats)
                });
                barrier.wait(); // push ends
                phase(&mut |conn, work, stats| close_phase(conn, work, stats));
                match failure {
                    Some(e) => Err(e),
                    None => Ok(stats),
                }
            }));
        }
        barrier.wait();
        let t0 = Instant::now();
        barrier.wait();
        open_elapsed = t0.elapsed().as_secs_f64();
        barrier.wait();
        let t1 = Instant::now();
        barrier.wait();
        push_elapsed = t1.elapsed().as_secs_f64();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|_| Err("connection thread panicked".into()))
            })
            .collect()
    });

    let mut latencies = Vec::new();
    let mut report = ServeReport {
        sessions: load.sessions,
        rounds: load.rounds,
        conns: load.conns,
        open_per_sec: 0.0,
        rounds_per_sec: 0.0,
        round_p50_us: 0.0,
        round_p99_us: 0.0,
        digest_checked: 0,
        digest_mismatches: 0,
        result_mismatches: 0,
        shed_retries: 0,
        rounds_total: 0,
    };
    for r in conn_results {
        let stats = r?;
        latencies.extend(stats.latencies_us);
        report.shed_retries += stats.shed_retries;
        report.result_mismatches += stats.result_mismatches;
        report.digest_checked += stats.digest_checked;
        report.digest_mismatches += stats.digest_mismatches;
        report.rounds_total += stats.rounds_total;
    }
    latencies.sort_by(|a, b| a.total_cmp(b));
    report.round_p50_us = percentile(&latencies, 0.50);
    report.round_p99_us = percentile(&latencies, 0.99);
    report.open_per_sec = load.sessions as f64 / open_elapsed.max(1e-9);
    report.rounds_per_sec = report.rounds_total as f64 / push_elapsed.max(1e-9);
    Ok(report)
}

/// Renders a `BENCH_serve.json` document (the shape
/// [`crate::gate::check_serve`] consumes).
pub fn render_serve_json(server: &ServerConfig, load: &LoadConfig, report: &ServeReport) -> String {
    format!(
        r#"{{
  "bench": "serve",
  "config": {{
    "shards": {shards},
    "queue_depth": {queue},
    "nodes": {nodes},
    "conns": {conns},
    "window": {window},
    "seed": {seed},
    "extended_every": {ext}
  }},
  "results": [
    {{
      "sessions": {sessions},
      "rounds": {rounds},
      "open_per_sec": {ops:.1},
      "rounds_per_sec": {rps:.1},
      "round_p50_us": {p50:.1},
      "round_p99_us": {p99:.1},
      "digest_checked": {checked},
      "digest_mismatches": {dmiss},
      "result_mismatches": {rmiss},
      "shed_retries": {shed},
      "rounds_total": {total}
    }}
  ]
}}
"#,
        shards = server.shards,
        queue = server.queue_depth,
        nodes = server.params.nodes,
        conns = report.conns,
        window = load.window,
        seed = load.seed,
        ext = load.extended_every,
        sessions = report.sessions,
        rounds = report.rounds,
        ops = report.open_per_sec,
        rps = report.rounds_per_sec,
        p50 = report.round_p50_us,
        p99 = report.round_p99_us,
        checked = report.digest_checked,
        dmiss = report.digest_mismatches,
        rmiss = report.result_mismatches,
        shed = report.shed_retries,
        total = report.rounds_total,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_telemetry::json::JsonValue;

    #[test]
    fn rendered_report_parses_and_self_gates() {
        let server = ServerConfig::fast();
        let load = LoadConfig::fast();
        let report = ServeReport {
            sessions: load.sessions,
            rounds: load.rounds,
            conns: load.conns,
            open_per_sec: 12_000.0,
            rounds_per_sec: 40_000.0,
            round_p50_us: 650.0,
            round_p99_us: 4_200.0,
            digest_checked: load.sessions,
            digest_mismatches: 0,
            result_mismatches: 0,
            shed_retries: 3,
            rounds_total: (load.sessions * load.rounds) as u64,
        };
        let doc = JsonValue::parse(&render_serve_json(&server, &load, &report)).unwrap();
        let violations = crate::gate::check_serve(&doc, &doc).unwrap();
        assert_eq!(violations, Vec::<String>::new());
    }

    #[test]
    fn percentiles_pick_order_statistics() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        // Nearest-rank on the 0-indexed array: (99 × 0.5).round() = 50.
        assert_eq!(percentile(&v, 0.5), 51.0);
        assert_eq!(percentile(&v, 0.99), 99.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
