//! Criterion bench: exhaustive vs heuristic matching (Section 4.4).
//!
//! Measures a single localization's matching cost: the O(n⁴) ergodic scan
//! against Algorithm 2 warm-started at the answer's neighborhood (the
//! tracking steady state) and cold-started at the field centre.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fttt::facemap::FaceMap;
use fttt::matching::{match_exhaustive, match_heuristic};
use fttt::sampling::basic_sampling_vector;
use fttt::vector::SamplingVector;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wsn_geometry::{Point, Rect};
use wsn_network::{Deployment, GroupSampler, SensorField};
use wsn_signal::{uncertainty_constant, PathLossModel};

struct Setup {
    map: FaceMap,
    vector: SamplingVector,
    truth: Point,
}

fn setup(n: usize, seed: u64) -> Setup {
    let field = Rect::square(100.0);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let deployment = Deployment::random_uniform(n, field, &mut rng);
    let sensor_field = SensorField::new(deployment, 200.0);
    let c = uncertainty_constant(1.0, 4.0, 6.0);
    let map = FaceMap::build(&sensor_field.deployment().positions(), field, c, 1.0);
    let sampler = GroupSampler::new(PathLossModel::paper_default(), 5);
    let truth = Point::new(47.0, 53.0);
    let group = sampler.sample(&sensor_field, truth, &mut rng);
    Setup {
        map,
        vector: basic_sampling_vector(&group),
        truth,
    }
}

fn bench_matching(c: &mut Criterion) {
    let mut g = c.benchmark_group("matching");
    for n in [10usize, 20, 40] {
        let s = setup(n, 7);
        let warm_start = s.map.face_at(s.truth).unwrap();
        let cold_start = s.map.center_face();
        g.bench_with_input(BenchmarkId::new("exhaustive", n), &s, |b, s| {
            b.iter(|| match_exhaustive(&s.map, &s.vector));
        });
        g.bench_with_input(BenchmarkId::new("heuristic_warm", n), &s, |b, s| {
            b.iter(|| match_heuristic(&s.map, &s.vector, warm_start));
        });
        g.bench_with_input(BenchmarkId::new("heuristic_cold", n), &s, |b, s| {
            b.iter(|| match_heuristic(&s.map, &s.vector, cold_start));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_matching);
criterion_main!(benches);
