//! Criterion bench: Algorithm 1 (sampling-vector construction).
//!
//! The paper claims O(n²·k) time; this bench sweeps n at fixed k and k at
//! fixed n to expose both factors.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fttt::sampling::{basic_sampling_vector, extended_sampling_vector};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wsn_geometry::{Point, Rect};
use wsn_network::{Deployment, GroupSampler, GroupSampling, SensorField};
use wsn_signal::PathLossModel;

fn sample_group(n: usize, k: usize, seed: u64) -> GroupSampling {
    let field = Rect::square(100.0);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let deployment = Deployment::random_uniform(n, field, &mut rng);
    let sensor_field = SensorField::new(deployment, 200.0);
    let sampler = GroupSampler::new(PathLossModel::paper_default(), k);
    sampler.sample(&sensor_field, Point::new(50.0, 50.0), &mut rng)
}

fn bench_nodes(c: &mut Criterion) {
    let mut g = c.benchmark_group("algorithm1/nodes");
    for n in [10usize, 20, 40, 80] {
        let group = sample_group(n, 5, 1);
        g.bench_with_input(BenchmarkId::new("basic", n), &group, |b, group| {
            b.iter(|| basic_sampling_vector(group));
        });
        g.bench_with_input(BenchmarkId::new("extended", n), &group, |b, group| {
            b.iter(|| extended_sampling_vector(group));
        });
    }
    g.finish();
}

fn bench_samples(c: &mut Criterion) {
    let mut g = c.benchmark_group("algorithm1/samples");
    for k in [3usize, 5, 9, 16] {
        let group = sample_group(20, k, 2);
        g.bench_with_input(BenchmarkId::new("basic", k), &group, |b, group| {
            b.iter(|| basic_sampling_vector(group));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_nodes, bench_samples);
criterion_main!(benches);
