//! Criterion bench: one full localization (sample → Algorithm 1 → match)
//! and a short tracking run, for every strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fttt::config::PaperParams;
use fttt::tracker::{Tracker, TrackerOptions};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wsn_baselines::{DirectMle, PathMatching};

fn bench_localize(c: &mut Criterion) {
    let params = PaperParams::default().with_nodes(15);
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let field = params.random_field(&mut rng);
    let map = params.face_map(&field);
    let sampler = params.sampler();
    let group = sampler.sample(&field, wsn_geometry::Point::new(50.0, 50.0), &mut rng);

    let mut g = c.benchmark_group("localize_once/n15");
    g.bench_function("fttt_exhaustive", |b| {
        let mut tracker = Tracker::new(map.clone(), TrackerOptions::default());
        b.iter(|| tracker.localize(&group));
    });
    g.bench_function("fttt_heuristic", |b| {
        let mut tracker = Tracker::new(map.clone(), TrackerOptions::heuristic());
        b.iter(|| tracker.localize(&group));
    });
    g.bench_function("fttt_extended", |b| {
        let mut tracker = Tracker::new(map.clone(), TrackerOptions::extended());
        b.iter(|| tracker.localize(&group));
    });
    let positions = field.deployment().positions();
    g.bench_function("direct_mle", |b| {
        let mle = DirectMle::new(&positions, params.rect(), params.cell_size);
        b.iter(|| mle.localize(&group));
    });
    g.bench_function("pm", |b| {
        let mut pm = PathMatching::new(
            &positions,
            params.rect(),
            params.cell_size,
            params.max_speed,
            params.localization_period(),
        );
        b.iter(|| pm.localize(&group));
    });
    g.finish();
}

fn bench_track_10s(c: &mut Criterion) {
    let mut g = c.benchmark_group("track_10s");
    g.sample_size(10);
    for n in [10usize, 25] {
        let params = PaperParams::default().with_nodes(n);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let field = params.random_field(&mut rng);
        let map = params.face_map(&field);
        let sampler = params.sampler();
        let trace = params.random_trace(10.0, &mut rng);
        g.bench_with_input(BenchmarkId::new("fttt_basic", n), &n, |b, _| {
            b.iter(|| {
                let mut tracker = Tracker::new(map.clone(), TrackerOptions::default());
                let mut run_rng = ChaCha8Rng::seed_from_u64(12);
                tracker.track(&field, &sampler, &trace, &mut run_rng)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_localize, bench_track_10s);
criterion_main!(benches);
