//! Criterion bench: offline face-map construction (Section 4.3).
//!
//! Sweeps node count (pair dimension ∝ n²) and contrasts serial vs
//! parallel rasterization — the workload the wsn-parallel substrate
//! exists for.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fttt::facemap::FaceMap;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wsn_geometry::{Point, Rect};
use wsn_network::Deployment;
use wsn_signal::uncertainty_constant;

fn positions(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Deployment::random_uniform(n, Rect::square(100.0), &mut rng).positions()
}

fn bench_nodes(c: &mut Criterion) {
    let constant = uncertainty_constant(1.0, 4.0, 6.0);
    let field = Rect::square(100.0);
    let mut g = c.benchmark_group("facemap/nodes");
    g.sample_size(10);
    for n in [10usize, 20, 40] {
        let pos = positions(n, 3);
        g.bench_with_input(BenchmarkId::new("serial_cell2m", n), &pos, |b, pos| {
            b.iter(|| FaceMap::build(pos, field, constant, 2.0));
        });
    }
    g.finish();
}

fn bench_parallel(c: &mut Criterion) {
    let constant = uncertainty_constant(1.0, 4.0, 6.0);
    let field = Rect::square(100.0);
    let pos = positions(25, 4);
    let mut g = c.benchmark_group("facemap/threads");
    g.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| FaceMap::build_with_threads(&pos, field, constant, 1.0, threads));
            },
        );
    }
    g.finish();
}

fn bench_adaptive(c: &mut Criterion) {
    let constant = uncertainty_constant(1.0, 4.0, 6.0);
    let field = Rect::square(100.0);
    let pos = positions(20, 5);
    let mut g = c.benchmark_group("facemap/adaptive");
    g.sample_size(10);
    // Full build at 0.5 m vs adaptive 4 m → 0.5 m (refine 8): same final
    // resolution, boundary-only classification.
    g.bench_function("full_0.5m", |b| {
        b.iter(|| FaceMap::build(&pos, field, constant, 0.5));
    });
    g.bench_function("adaptive_4m_r8", |b| {
        b.iter(|| FaceMap::build_adaptive(&pos, field, constant, 4.0, 8, 1));
    });
    g.bench_function("adaptive_2m_r4", |b| {
        b.iter(|| FaceMap::build_adaptive(&pos, field, constant, 2.0, 4, 1));
    });
    g.finish();
}

criterion_group!(benches, bench_nodes, bench_parallel, bench_adaptive);
criterion_main!(benches);
