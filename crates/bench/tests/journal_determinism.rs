//! Satellite of the determinism work: two identically-seeded campaign
//! runs must serialize to byte-identical *canonical* journals, including
//! when the per-trial work is spread across different
//! `par_map_threads` widths — the canonical form strips everything
//! scheduling-dependent (wall-clock, sequence numbers, thread ordinals)
//! and sorts, so only simulation state is left to compare.
//!
//! The journal sink is process-global: one `#[test]` drives all phases
//! sequentially.

use std::sync::Arc;

use fttt::replay::stable_session_id;
use fttt::session::{SessionOptions, TrackingSession};
use fttt::tracker::{Tracker, TrackerOptions};
use fttt_bench::robustness::{run_campaign_stats, CampaignConfig, CampaignKind};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wsn_parallel::{par_map_threads, seed_for};
use wsn_telemetry::Journal;

/// Runs `f` under a fresh journal and returns the canonical JSONL.
fn canonical_of<F: FnOnce()>(f: F) -> String {
    let journal = Arc::new(Journal::with_capacity(1 << 16));
    wsn_telemetry::install_journal(Arc::clone(&journal));
    f();
    wsn_telemetry::uninstall_journal();
    let log = journal.snapshot();
    assert_eq!(log.dropped, 0, "canonical form is only meaningful lossless");
    log.to_canonical_jsonl()
}

/// A small batch of stable-id sessions, fanned out over `threads`
/// workers.
fn session_batch(threads: usize) {
    let params = fttt::config::PaperParams::default()
        .with_nodes(8)
        .with_cell_size(2.0);
    let field = params.grid_field();
    let map = params.face_map(&field);
    let idx: Vec<u64> = (0..4).collect();
    par_map_threads(threads, &idx, |_, &i| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed_for(99, i));
        let trace = params.random_trace(4.0, &mut rng);
        let mut session = TrackingSession::new(
            Tracker::new(map.clone(), TrackerOptions::heuristic()),
            SessionOptions::new(params.samples_k).with_max_speed(params.max_speed),
        )
        .with_session_id(stable_session_id(
            "det-test",
            "FTTT-basic",
            None,
            i,
            map.epoch(),
        ));
        let sampler = params.sampler();
        session.run(&trace, &mut rng, |_, pos, _, r| {
            sampler.sample(&field, pos, r)
        });
    });
}

#[test]
fn identically_seeded_runs_serialize_to_identical_canonical_journals() {
    // Phase 1: the full campaign path (header + trial + round events),
    // run twice under the default thread fan-out. Different wall-clock,
    // different interleaving — same canonical bytes.
    let cfg = CampaignConfig {
        seed: 17,
        trials: 2,
        duration: 4.0,
        nodes: 8,
    };
    let kind = CampaignKind::Custom {
        label: "det".into(),
        schedule: "burst enter=0.2 exit=0.4 loss_bad=0.9".into(),
    };
    let a = canonical_of(|| {
        run_campaign_stats(&cfg, &kind, 1, 0);
    });
    let b = canonical_of(|| {
        run_campaign_stats(&cfg, &kind, 1, 0);
    });
    assert!(
        a.lines().count() > 10,
        "campaign journal should hold header + trials + rounds:\n{a}"
    );
    assert_eq!(
        a, b,
        "identically-seeded campaigns must journal identically"
    );

    // Phase 2: explicit thread widths. One worker vs four must not move a
    // byte — stable session ids keep events identity-keyed, canonical
    // serialization strips the scheduling.
    let serial = canonical_of(|| session_batch(1));
    let wide = canonical_of(|| session_batch(4));
    assert_eq!(
        serial, wide,
        "canonical journal must be invariant to par_map_threads width"
    );

    // Sanity: the *raw* JSONL of two runs genuinely differs (wall-clock
    // timestamps), so the equality above is the canonicalization working,
    // not an empty statement.
    let journal = Arc::new(Journal::with_capacity(1 << 16));
    wsn_telemetry::install_journal(Arc::clone(&journal));
    session_batch(1);
    wsn_telemetry::uninstall_journal();
    let raw = journal.snapshot().to_jsonl();
    assert!(raw.contains("\"ts_us\":"), "raw JSONL keeps wall-clock");
    assert!(
        !serial.contains("\"ts_us\":"),
        "canonical JSONL must not leak wall-clock"
    );
}
