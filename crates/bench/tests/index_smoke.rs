//! Tier-1 smoke test for the coarse-to-fine face index: on a small but
//! non-trivial map the index must actually be built, agree bit-for-bit
//! with the exhaustive matcher (face, similarity, and full tie set), and
//! finish its probes inside a generous wall-clock budget. The real scale
//! and latency story lives in `perf_snapshot` (N = 100/200 rows); this
//! test only guards against the index silently not engaging or turning
//! pathological, and is sized to stay well under two seconds.

use fttt::matching::{match_exhaustive, match_indexed};
use fttt::sampling::basic_sampling_vector;
use fttt::FaceMap;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;
use wsn_geometry::{Point, Rect};
use wsn_network::{Deployment, GroupSampler, SensorField};
use wsn_signal::{uncertainty_constant, PathLossModel};

#[test]
fn indexed_match_engages_and_agrees_with_exhaustive_at_n40() {
    let field = Rect::square(100.0);
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let deployment = Deployment::random_uniform(40, field, &mut rng);
    let sf = SensorField::new(deployment, 200.0);
    let c = uncertainty_constant(1.0, 4.0, 6.0);
    let map = FaceMap::build(&sf.deployment().positions(), field, c, 2.0);
    assert!(
        map.planes().has_chunks(),
        "FaceMap::build must leave the spatial index built"
    );
    assert!(
        map.planes().chunk_count() > 1,
        "index degenerated to one chunk"
    );

    let sampler = GroupSampler::new(PathLossModel::paper_default(), 5);
    let probes: Vec<_> = (0..4)
        .flat_map(|i| {
            (0..4).map(move |j| Point::new(12.5 + 25.0 * i as f64, 12.5 + 25.0 * j as f64))
        })
        .map(|p| basic_sampling_vector(&sampler.sample(&sf, p, &mut rng)))
        .collect();

    let t0 = Instant::now();
    for v in &probes {
        let ex = match_exhaustive(&map, v);
        let ix = match_indexed(&map, v);
        // Exhaustive-quality contract: identical winner, bit-identical
        // similarity, identical tie set.
        assert_eq!(ix.face, ex.face);
        assert_eq!(ix.similarity.to_bits(), ex.similarity.to_bits());
        assert_eq!(ix.ties, ex.ties);
        // Sublinearity in its weakest form: the index must have pruned
        // something, not degenerated into a full scan.
        assert!(
            ix.evaluated < map.face_count(),
            "index evaluated every face ({} of {})",
            ix.evaluated,
            map.face_count()
        );
    }
    let elapsed = t0.elapsed();
    assert!(
        elapsed.as_secs_f64() < 2.0,
        "index smoke probes took {elapsed:?}, budget is 2 s"
    );
}
