//! Gate smoke test against the *committed* baseline artifact: the baseline
//! must pass the gate against itself (so `perf_snapshot --check` on an
//! unchanged tree can pass), and a doctored fresh run must be caught with
//! the regressing metric named.

use fttt_bench::gate::check_core;
use wsn_telemetry::json::JsonValue;

fn baseline() -> JsonValue {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/baselines/core.json");
    let text = std::fs::read_to_string(path).expect("committed baseline missing");
    JsonValue::parse(&text).expect("committed baseline is not valid JSON")
}

#[test]
fn committed_baseline_passes_against_itself() {
    let doc = baseline();
    assert_eq!(check_core(&doc, &doc).unwrap(), Vec::<String>::new());
}

#[test]
fn committed_baseline_has_every_gated_metric() {
    // A baseline missing a gated metric would silently weaken the gate;
    // check_core reports such holes as violations, so self-check covers it
    // — but assert the row *shape* so an empty or truncated artifact
    // can't pass: the full n = 10/20/40 sweep, the match-only
    // N = 100/200 scale rows, then the trailing n = 40 live-churn repair
    // row, and (presence-driven gating) every row must actually carry
    // the metrics it is supposed to pin.
    let doc = baseline();
    let rows = doc.get("results").and_then(JsonValue::as_array).unwrap();
    let ns: Vec<u64> = rows
        .iter()
        .filter_map(|r| r.get("n").and_then(JsonValue::as_u64))
        .collect();
    assert_eq!(
        ns,
        vec![10, 20, 40, 100, 200, 40],
        "baseline sweep rows changed"
    );
    for row in rows {
        let n = row.get("n").and_then(JsonValue::as_u64).unwrap();
        if let Some(repair) = row.get("map_repair_us") {
            // The repair row carries both medians, and the committed
            // incremental one honors the PR's acceptance criterion:
            // median single-node repair at n = 40 is sub-millisecond.
            let med = |key| repair.get(key).and_then(JsonValue::as_f64);
            let incremental = med("incremental_median").expect("incremental_median");
            assert!(med("rebuild_median").is_some(), "rebuild_median missing");
            assert!(
                incremental > 0.0 && incremental < 1000.0,
                "committed incremental repair median not sub-ms: {incremental} µs"
            );
            continue;
        }
        for metric in ["indexed", "indexed_p99"] {
            assert!(
                row.get("match_us")
                    .and_then(|m| m.get(metric))
                    .and_then(JsonValue::as_f64)
                    .is_some(),
                "n={n}: baseline row lacks match_us.{metric}"
            );
        }
        // Scale rows are match-only: they must not accidentally start
        // gating build timings nobody measured at that size.
        assert_eq!(row.get("build_ms").is_some(), n <= 40, "n={n}");
    }
    assert_eq!(
        rows.iter()
            .filter(|r| r.get("map_repair_us").is_some())
            .count(),
        1,
        "exactly one repair row"
    );
}

#[test]
fn doctored_fresh_run_fails_with_the_metric_named() {
    let base = baseline();
    let mut fresh = baseline();
    for row in fresh
        .get_mut("results")
        .unwrap()
        .as_array_mut()
        .unwrap()
        .iter_mut()
    {
        // The trailing repair row has no match_us block; its own
        // doctored-run coverage lives in the gate unit tests.
        let Some(m) = row.get_mut("match_us") else {
            continue;
        };
        if let JsonValue::Obj(map) = m {
            if let Some(JsonValue::Num(v)) = map.get_mut("packed_exhaustive") {
                // Past any tolerance regardless of the baseline's scale.
                *v = *v * 10.0 + 1000.0;
            }
        }
    }
    let violations = check_core(&fresh, &base).unwrap();
    assert!(!violations.is_empty(), "doctored run passed the gate");
    assert!(
        violations
            .iter()
            .all(|v| v.contains("match_us.packed_exhaustive") && v.contains("regressed")),
        "{violations:?}"
    );
}
