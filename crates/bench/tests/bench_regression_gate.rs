//! Gate smoke test against the *committed* baseline artifact: the baseline
//! must pass the gate against itself (so `perf_snapshot --check` on an
//! unchanged tree can pass), and a doctored fresh run must be caught with
//! the regressing metric named.

use fttt_bench::gate::check_core;
use wsn_telemetry::json::JsonValue;

fn baseline() -> JsonValue {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/baselines/core.json");
    let text = std::fs::read_to_string(path).expect("committed baseline missing");
    JsonValue::parse(&text).expect("committed baseline is not valid JSON")
}

#[test]
fn committed_baseline_passes_against_itself() {
    let doc = baseline();
    assert_eq!(check_core(&doc, &doc).unwrap(), Vec::<String>::new());
}

#[test]
fn committed_baseline_has_every_gated_metric() {
    // A baseline missing a gated metric would silently weaken the gate;
    // check_core reports such holes as violations, so self-check covers it
    // — but assert the rows exist at all so an empty artifact can't pass.
    let doc = baseline();
    let rows = doc.get("results").and_then(JsonValue::as_array).unwrap();
    assert!(rows.len() >= 3, "expected the n = 10/20/40 sweep rows");
}

#[test]
fn doctored_fresh_run_fails_with_the_metric_named() {
    let base = baseline();
    let mut fresh = baseline();
    for row in fresh
        .get_mut("results")
        .unwrap()
        .as_array_mut()
        .unwrap()
        .iter_mut()
    {
        let m = row.get_mut("match_us").expect("row without match_us");
        if let JsonValue::Obj(map) = m {
            if let Some(JsonValue::Num(v)) = map.get_mut("packed_exhaustive") {
                // Past any tolerance regardless of the baseline's scale.
                *v = *v * 10.0 + 1000.0;
            }
        }
    }
    let violations = check_core(&fresh, &base).unwrap();
    assert!(!violations.is_empty(), "doctored run passed the gate");
    assert!(
        violations
            .iter()
            .all(|v| v.contains("match_us.packed_exhaustive") && v.contains("regressed")),
        "{violations:?}"
    );
}
