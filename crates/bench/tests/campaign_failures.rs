//! Failure-path tests for the sharded campaign coordinator: doctored,
//! corrupt and missing shard files, a worker killed mid-run, and an
//! unusable shard dir must all produce a named `shard N` diagnostic and
//! exit 1 — never a panic backtrace — and a coordinator that spawned its
//! own workers must clean its shard files up on the way out.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn campaign() -> &'static str {
    env!("CARGO_BIN_EXE_fault_campaign")
}

fn run(cwd: &Path, args: &[&str]) -> Output {
    Command::new(campaign())
        .args(args)
        .current_dir(cwd)
        .output()
        .expect("spawn fault_campaign")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// A fresh scratch dir under the target tmp; unique per test.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fttt-campaign-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn assert_graceful_failure(out: &Output, needles: &[&str]) {
    let err = stderr_of(out);
    assert!(
        !out.status.success(),
        "expected exit 1, got {:?}",
        out.status
    );
    assert_eq!(out.status.code(), Some(1), "expected exit code 1: {err}");
    for needle in needles {
        assert!(err.contains(needle), "stderr missing {needle:?}:\n{err}");
    }
    assert!(
        !err.contains("panicked at"),
        "failure must not be a panic backtrace:\n{err}"
    );
}

#[test]
fn missing_shard_file_names_the_shard() {
    let dir = scratch("missing");
    let shards = dir.join("shards");
    std::fs::create_dir_all(&shards).unwrap();
    let out = run(
        &dir,
        &[
            "--fast",
            "--shards",
            "2",
            "--merge-only",
            "--shard-dir",
            shards.to_str().unwrap(),
        ],
    );
    assert_graceful_failure(&out, &["shard 0", "cannot read"]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_shard_file_names_the_shard_and_file() {
    let dir = scratch("corrupt");
    let shards = dir.join("shards");
    std::fs::create_dir_all(&shards).unwrap();
    std::fs::write(shards.join("shard-0-of-2.json"), "{ definitely not json").unwrap();
    let out = run(
        &dir,
        &[
            "--fast",
            "--shards",
            "2",
            "--merge-only",
            "--shard-dir",
            shards.to_str().unwrap(),
        ],
    );
    assert_graceful_failure(
        &out,
        &["shard 0", "corrupt shard file", "shard-0-of-2.json"],
    );
    // --merge-only never cleans up: the evidence stays for inspection.
    assert!(shards.join("shard-0-of-2.json").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

/// A structurally valid shard file in the wrong slot (a real shard 0
/// copied over shard 1) is caught by the claims check, by name.
#[test]
fn doctored_shard_file_is_rejected_by_its_claims() {
    let dir = scratch("doctored");
    let shards = dir.join("shards");
    let common = ["--fast", "--seed", "7", "--trials", "4", "--shards", "2"];
    // Produce one genuine shard file.
    let worker = run(
        &dir,
        &[
            &common[..],
            &["--shard-id", "0", "--shard-dir", shards.to_str().unwrap()],
        ]
        .concat(),
    );
    assert!(
        worker.status.success(),
        "worker failed: {}",
        stderr_of(&worker)
    );
    // Doctor it into the other slot and merge.
    std::fs::copy(
        shards.join("shard-0-of-2.json"),
        shards.join("shard-1-of-2.json"),
    )
    .unwrap();
    let out = run(
        &dir,
        &[
            &common[..],
            &["--merge-only", "--shard-dir", shards.to_str().unwrap()],
        ]
        .concat(),
    );
    assert_graceful_failure(&out, &["shard 1", "claims shard 0/2"]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shard_dir_that_is_a_file_fails_upfront() {
    let dir = scratch("dirfile");
    let not_a_dir = dir.join("shards");
    std::fs::write(&not_a_dir, "occupied").unwrap();
    let out = run(
        &dir,
        &[
            "--fast",
            "--shards",
            "2",
            "--shard-dir",
            not_a_dir.to_str().unwrap(),
        ],
    );
    assert_graceful_failure(&out, &["--shard-dir"]);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Kill the workers mid-run: the coordinator must name the dead shards,
/// exit 1 without a backtrace, and remove the shard files it owns.
#[test]
fn killed_worker_is_reported_by_name_and_cleaned_up() {
    let dir = scratch("killed");
    let shards_dir = dir.join("shards");
    let marker = shards_dir.to_str().unwrap().to_string();
    // Plenty of trials so the workers are still running when we shoot.
    let coordinator = Command::new(campaign())
        .args([
            "--fast",
            "--trials",
            "1000",
            "--shards",
            "2",
            "--shard-dir",
            &marker,
        ])
        .current_dir(&dir)
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn coordinator");

    // Find the worker processes by their unique --shard-dir argument.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let mut killed = 0;
    while killed < 2 && std::time::Instant::now() < deadline {
        for pid in worker_pids(&marker) {
            let _ = Command::new("kill").args(["-9", &pid.to_string()]).status();
            killed += 1;
        }
        if killed < 2 {
            std::thread::sleep(std::time::Duration::from_millis(20));
        }
    }
    assert!(killed >= 1, "never found a worker process to kill");

    let out = coordinator.wait_with_output().expect("wait coordinator");
    assert_graceful_failure(&out, &["shard", "worker exited with"]);
    // The coordinator spawned these workers, so it cleans up after them.
    for shard_id in 0..2 {
        assert!(
            !shards_dir
                .join(format!("shard-{shard_id}-of-2.json"))
                .exists(),
            "shard {shard_id} file left behind after a failed spawned run"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Scans procfs for fault_campaign workers whose cmdline carries
/// `marker` (the test's unique shard dir) and a `--shard-id` argument.
fn worker_pids(marker: &str) -> Vec<u32> {
    let mut pids = Vec::new();
    let Ok(entries) = std::fs::read_dir("/proc") else {
        return pids;
    };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(pid) = name.to_str().and_then(|s| s.parse::<u32>().ok()) else {
            continue;
        };
        let Ok(cmdline) = std::fs::read(format!("/proc/{pid}/cmdline")) else {
            continue;
        };
        let args: Vec<&str> = cmdline
            .split(|b| *b == 0)
            .map(|part| std::str::from_utf8(part).unwrap_or(""))
            .collect();
        if args.iter().any(|a| a.contains("fault_campaign"))
            && args.contains(&"--shard-id")
            && args.contains(&marker)
        {
            pids.push(pid);
        }
    }
    pids
}
