//! Tier-1 smoke sweep of the fault campaign: the seeded fast workload must
//! hold every graceful-degradation envelope. This is the regression gate —
//! a change that makes the trackers or sessions degrade non-gracefully
//! under faults fails here, in seconds, without running the full campaign.

use fttt_bench::robustness::{
    campaign_field_side, check_envelopes, run_campaign, CampaignConfig, BLACKOUT_REGIME,
    SWEEP_RATES, SWEEP_REGIME,
};

#[test]
fn fast_campaign_holds_all_envelopes() {
    let cfg = CampaignConfig::fast(42);
    let rows = run_campaign(&cfg);
    // Both methods × (4 sweep rates + 5 showcase regimes + 3 churn map
    // policies).
    assert_eq!(rows.len(), 2 * (SWEEP_RATES.len() + 5 + 3));
    assert_eq!(
        rows.iter()
            .filter(|r| r.regime.starts_with("churn-"))
            .count(),
        6,
        "churn family missing from the builtin campaign"
    );
    let violations = check_envelopes(&rows, campaign_field_side(&cfg));
    assert!(
        violations.is_empty(),
        "envelope violations:\n{}",
        violations.join("\n")
    );

    // The sweep anchors: fault-free cells must be meaningfully better than
    // the blind-guess scale, not merely under it.
    for r in rows.iter().filter(|r| r.fault_rate == Some(0.0)) {
        assert!(
            r.mean_error < 0.25 * campaign_field_side(&cfg),
            "{}: fault-free mean {:.1} m is no better than guessing",
            r.method,
            r.mean_error
        );
    }
    // The blackout showcase is the Lost→Tracking regression anchor; the
    // envelope check enforces recovery, this asserts it actually triggered.
    for r in rows.iter().filter(|r| r.regime == BLACKOUT_REGIME) {
        assert!(
            r.trials_lost > 0,
            "{}: blackout never reached Lost",
            r.method
        );
        assert!(r.lost_fraction > 0.0);
    }
    let _ = SWEEP_REGIME;
}

#[test]
fn campaign_rows_are_deterministic() {
    let cfg = CampaignConfig {
        seed: 7,
        trials: 2,
        duration: 8.0,
        nodes: 8,
    };
    let a = run_campaign(&cfg);
    let b = run_campaign(&cfg);
    assert_eq!(a, b, "same seed must reproduce the campaign exactly");
}
