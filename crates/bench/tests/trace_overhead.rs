//! Tier-1 trace-overhead smoke test: with NO journal installed, the
//! journal-instrumented hot paths must cost essentially the same as an
//! uninstrumented inline scan of the same work. Mirror of
//! `telemetry_overhead.rs` for the tracing side: this file must stay the
//! only test in its binary and must NEVER install a journal (or a metrics
//! sink) — integration tests share a process per file, and a journal
//! installed by any test here would arm the global tracing flag for the
//! timed loops.

use fttt::facemap::FaceMap;
use fttt::matching::match_exhaustive;
use fttt::sampling::basic_sampling_vector;
use fttt::vector::{difference_norm_squared, SamplingVector};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;
use wsn_geometry::{Point, Rect};
use wsn_network::{Deployment, GroupSampler, SensorField};
use wsn_signal::{uncertainty_constant, PathLossModel};

fn setup() -> (FaceMap, SamplingVector) {
    let field = Rect::square(100.0);
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let deployment = Deployment::random_uniform(12, field, &mut rng);
    let sensor_field = SensorField::new(deployment, 200.0);
    let c = uncertainty_constant(1.0, 4.0, 6.0);
    let map = FaceMap::build(&sensor_field.deployment().positions(), field, c, 4.0);
    let sampler = GroupSampler::new(PathLossModel::paper_default(), 5);
    let group = sampler.sample(&sensor_field, Point::new(47.0, 53.0), &mut rng);
    (map, basic_sampling_vector(&group))
}

/// The matcher's work without any instrumentation call sites.
fn uninstrumented_scan(map: &FaceMap, v: &SamplingVector) -> f64 {
    let mut best = f64::NEG_INFINITY;
    for f in map.faces() {
        let d2 = difference_norm_squared(v, &f.signature);
        let s = if d2 == 0.0 {
            f64::INFINITY
        } else {
            1.0 / d2.sqrt()
        };
        if s > best {
            best = s;
        }
    }
    best
}

/// Min-of-rounds over batches: the minimum approximates uncontended cost.
fn min_batch_us(rounds: usize, batch: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..rounds {
        let t0 = Instant::now();
        for _ in 0..batch {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64() * 1e6 / batch as f64);
    }
    best
}

#[test]
fn disabled_tracing_is_effectively_free() {
    assert!(
        !wsn_telemetry::enabled() && !wsn_telemetry::journal_enabled(),
        "this test binary must never install a sink or a journal"
    );
    let (map, v) = setup();
    for _ in 0..10 {
        std::hint::black_box(match_exhaustive(&map, &v));
        std::hint::black_box(uninstrumented_scan(&map, &v));
    }
    let rounds = 8;
    let batch = 25;
    let instrumented = min_batch_us(rounds, batch, || {
        std::hint::black_box(match_exhaustive(&map, &v));
    });
    let bare = min_batch_us(rounds, batch, || {
        std::hint::black_box(uninstrumented_scan(&map, &v));
    });
    // Loose by design (see telemetry_overhead.rs): this guards against a
    // journal accidentally armed by default or unconditional event
    // construction on the hot path, not microvariance.
    assert!(
        instrumented < 5.0 * bare + 20.0,
        "instrumented match_exhaustive {instrumented:.2} µs vs bare scan {bare:.2} µs — \
         tracing is not free with no journal installed"
    );

    // A disabled span must degenerate to a couple of relaxed loads: even a
    // generous bound catches an accidental allocation or lock per call.
    let span_us = min_batch_us(rounds, 10_000, || {
        let _ = std::hint::black_box(wsn_telemetry::span("trace.overhead.test"));
    });
    assert!(
        span_us < 1.0,
        "a disabled span costs {span_us:.4} µs — expected well under a microsecond"
    );
}
