//! Tier-1 smoke for the live ops plane: a small traced load against an
//! in-process server must advance `/metrics` between scrapes, keep
//! `/healthz` green, stamp the same trace ids on both sides of the wire
//! (client journal events <-> server push spans), and keep serving plain
//! v1 (untraced) clients.

use fttt_bench::serve::{run_load, LoadConfig};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;
use wsn_server::{Server, ServerConfig};
use wsn_telemetry::json::JsonValue;
use wsn_telemetry::trace::Journal;
use wsn_telemetry::validate_prometheus_text;

fn http_get(addr: &str, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect ops");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut text = String::new();
    let _ = stream.read_to_string(&mut text);
    let status = text
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse().ok())
        .unwrap_or(0);
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    (status, body)
}

/// The value of an un-labelled Prometheus series in a scrape body.
fn prom_value(text: &str, series: &str) -> Option<f64> {
    text.lines().find_map(|l| {
        l.strip_prefix(series)
            .and_then(|rest| rest.trim().parse().ok())
    })
}

/// `(session, rounds)` per trace id for one event name in a jsonl trace.
fn spans_of(jsonl: &str, name: &str) -> BTreeMap<String, (u64, u64)> {
    let mut out = BTreeMap::new();
    for line in jsonl.lines() {
        let Ok(e) = JsonValue::parse(line) else {
            continue;
        };
        if e.get("name").and_then(JsonValue::as_str) != Some(name) {
            continue;
        }
        let Some(args) = e.get("args") else { continue };
        let u = |key: &str| args.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
        if let Some(trace) = args.get("trace").and_then(JsonValue::as_str) {
            out.insert(trace.to_owned(), (u("session"), u("rounds")));
        }
    }
    out
}

#[test]
fn ops_plane_tracks_a_live_traced_load() {
    let journal = Arc::new(Journal::with_capacity(4096));
    wsn_telemetry::install_journal(Arc::clone(&journal));

    let config = ServerConfig::fast();
    let server = Server::bind("127.0.0.1:0", config.clone()).unwrap();
    let ops = server.serve_ops("127.0.0.1:0").unwrap();
    let addr = ops.local_addr().to_string();
    let tracking = server.local_addr().to_string();

    // Pre-load scrape: valid exposition text, all shards healthy.
    let (status, before) = http_get(&addr, "/metrics");
    assert_eq!(status, 200);
    validate_prometheus_text(&before).expect("pre-load scrape must parse");
    let rounds_before = prom_value(&before, "fttt_server_rounds ").unwrap_or(0.0);
    let (status, health) = http_get(&addr, "/healthz");
    assert_eq!(status, 200, "{health}");
    assert!(health.contains("\"status\":\"ok\""), "{health}");

    // A small traced (wire v2) load.
    let load = LoadConfig {
        sessions: 8,
        rounds: 2,
        conns: 2,
        window: 4,
        seed: 7,
        extended_every: 4,
        trace: true,
    };
    let report = run_load(&tracking, &config, &load).unwrap();
    assert_eq!(report.digest_mismatches, 0);
    assert_eq!(report.rounds_total, 16);

    // Counters advanced between scrapes and health stayed green.
    let (status, after) = http_get(&addr, "/metrics");
    assert_eq!(status, 200);
    validate_prometheus_text(&after).expect("post-load scrape must parse");
    let rounds_after = prom_value(&after, "fttt_server_rounds ").unwrap();
    assert!(
        rounds_after >= rounds_before + 16.0,
        "rounds counter must advance: {rounds_before} -> {rounds_after}"
    );
    let (status, health) = http_get(&addr, "/healthz");
    assert_eq!(status, 200, "{health}");

    // Cross-wire correlation: every acked client push shares its trace id
    // (and session + round count) with a server-side span.
    let jsonl = journal.snapshot().to_jsonl();
    let client = spans_of(&jsonl, "fttt.client.push");
    let server_spans = spans_of(&jsonl, "fttt.server.push");
    assert_eq!(client.len(), 16, "one client event per acked push");
    for (trace, meta) in &client {
        assert_eq!(
            server_spans.get(trace),
            Some(meta),
            "client push {trace} has no matching server span"
        );
    }

    // A plain v1 client (untraced frames) is still served by the same
    // server, bit-identically.
    let v1 = LoadConfig {
        trace: false,
        seed: 8,
        ..load
    };
    let report = run_load(&tracking, &config, &v1).unwrap();
    assert_eq!(report.digest_mismatches, 0);
    assert_eq!(report.result_mismatches, 0);
}
