//! Tier-1 smoke for the tracking server: a small loopback load must be
//! bit-for-bit identical to the in-process engine — per-round results,
//! running digests and close-time digests — including blackout rounds.

use fttt::replay::{digest_round, Digest};
use fttt::session::TrackingSession;
use fttt::tracker::Tracker;
use fttt_bench::serve::{run_load, LoadConfig};
use std::sync::Arc;
use wsn_network::GroupSampling;
use wsn_server::{Connection, ReadingRound, RoundResult, Server, ServerConfig};
use wsn_signal::Rss;

/// The full harness over loopback: every session digest-checked against
/// the shadow engine, mixed basic/extended trackers.
#[test]
fn load_harness_is_bit_identical_to_the_engine() {
    let server = Server::bind("127.0.0.1:0", ServerConfig::fast()).unwrap();
    let load = LoadConfig {
        sessions: 60,
        rounds: 3,
        conns: 3,
        window: 8,
        seed: 42,
        extended_every: 4,
        trace: false,
    };
    let report = run_load(
        &server.local_addr().to_string(),
        &ServerConfig::fast(),
        &load,
    )
    .unwrap();
    assert_eq!(report.digest_checked, 60);
    assert_eq!(report.digest_mismatches, 0, "close digests diverged");
    assert_eq!(report.result_mismatches, 0, "per-round results diverged");
    assert_eq!(report.rounds_total, 180);
    assert!(report.round_p99_us >= report.round_p50_us);
    assert!(report.open_per_sec > 0.0 && report.rounds_per_sec > 0.0);
}

/// Hand-driven session with a blackout round in the middle: the wire
/// results must equal `RoundResult::from_round` of the local engine,
/// field for field, and the final digests must agree.
#[test]
fn blackout_rounds_round_trip_bit_for_bit() {
    let config = ServerConfig::fast();
    let server = Server::bind("127.0.0.1:0", config.clone()).unwrap();
    let params = &config.params;
    let field = params.grid_field();
    let map = Arc::new(params.face_map(&field));
    let mut shadow = TrackingSession::new(
        Tracker::shared(Arc::clone(&map), config.tracker_options(false)),
        config.session_options(),
    );
    let mut digest = Digest::new();

    let group_at = |present: bool| {
        let mut g = GroupSampling::empty(8, 3);
        if present {
            for instant in 0..3 {
                for node in 0..8 {
                    let dbm = -42.0 - 1.5 * node as f64 - 0.25 * instant as f64;
                    g.set(instant, node, Some(Rss::new(dbm)));
                }
            }
        }
        g
    };

    let mut conn = Connection::connect(server.local_addr()).unwrap();
    let info = conn.open_session(1, false).unwrap();
    // Round 1 is an all-missing blackout; the session must hold and both
    // sides must agree on the hold, bit for bit.
    for (round, present) in [(0.0, true), (1.0, false), (2.0, true)] {
        let group = group_at(present);
        let local = shadow.step(round, &group);
        digest_round(&mut digest, &local);
        let (results, running) = conn
            .push_rounds(info.session, vec![ReadingRound { t: round, group }])
            .unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0], RoundResult::from_round(&local), "t = {round}");
        assert_eq!(running, digest.value(), "running digest at t = {round}");
    }
    let (rounds, final_digest) = conn.close_session(info.session).unwrap();
    assert_eq!(rounds, 3);
    assert_eq!(final_digest, digest.value());
}
