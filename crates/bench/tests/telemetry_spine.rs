//! End-to-end telemetry spine test: install a sink AND a trace journal,
//! run a small campaign schedule through the real
//! session/sampler/regime/matcher stack, and assert that every
//! instrumented layer reported to both. Lives in its own file (= its own
//! test process) so the installed globals can never leak into the
//! sink-free overhead tests.

use fttt::{match_indexed, FaceMap, SamplingVector};
use fttt_bench::robustness::{run_custom_schedule, CampaignConfig};
use std::sync::Arc;
use wsn_geometry::{Point, Rect};
use wsn_network::Schedule;
use wsn_telemetry::{Journal, TraceEvent};

#[test]
fn campaign_populates_every_telemetry_layer() {
    let registry = Arc::new(wsn_telemetry::Registry::new());
    wsn_telemetry::install(Arc::clone(&registry));
    let journal = Arc::new(Journal::new());
    wsn_telemetry::install_journal(Arc::clone(&journal));
    let cfg = CampaignConfig {
        seed: 42,
        trials: 2,
        duration: 20.0,
        nodes: 8,
    };
    let schedule_text = "outage from=8 until=14";
    assert!(Schedule::parse(schedule_text).is_ok());
    let rows = run_custom_schedule(&cfg, "outage", schedule_text);
    // Indexed-matcher layer: drive it explicitly so its counters and
    // journal instants are deterministically present, on top of whatever
    // the sessions' full-accuracy re-acquisitions contributed.
    let positions = vec![
        Point::new(30.0, 30.0),
        Point::new(70.0, 30.0),
        Point::new(30.0, 70.0),
        Point::new(70.0, 70.0),
    ];
    let map = FaceMap::build(&positions, Rect::square(100.0), 1.15, 1.0);
    for f in map.faces().iter().take(3) {
        let v = SamplingVector::new(
            f.signature
                .components()
                .iter()
                .map(|&c| Some(c as f64))
                .collect(),
        );
        assert_eq!(match_indexed(&map, &v).face, f.id);
    }
    wsn_telemetry::uninstall();
    wsn_telemetry::uninstall_journal();
    assert_eq!(rows.len(), 2);

    let snap = registry.snapshot();
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);

    // Build layer: the campaign builds one shared face map (trials clone
    // it — the build is deterministic), plus the explicit build below.
    assert!(counter("fttt.build.calls") >= 2, "{:?}", snap.counters);
    assert!(counter("fttt.build.faces") > 0);
    assert!(snap.histograms.contains_key("fttt.build.total"));
    // Matcher layer: the session methods run the heuristic matcher.
    assert!(
        counter("fttt.match.heuristic.calls") > 0,
        "{:?}",
        snap.counters
    );
    assert!(counter("fttt.match.evaluations") > 0);
    // Session layer: rounds always tick; a 6 s blackout forces status
    // transitions (and Lost) in every trial.
    assert!(counter("fttt.session.rounds") > 0);
    assert!(
        counter("fttt.session.transitions") > 0,
        "{:?}",
        snap.counters
    );
    assert!(counter("fttt.session.to_lost") > 0, "{:?}", snap.counters);
    // Regime layer: the outage entry applies every round and drops every
    // delivered reading inside its window.
    assert!(counter("wsn.regime.activations") > 0, "{:?}", snap.counters);
    assert!(
        counter("wsn.regime.readings_dropped") > 0,
        "{:?}",
        snap.counters
    );
    // Sampler layer: groupings and delivered readings.
    assert!(counter("wsn.sampler.groupings") > 0);
    assert!(counter("wsn.sampler.readings_delivered") > 0);

    // The exporters agree with the snapshot on this real workload.
    let json = snap.to_json();
    assert!(json.contains("\"fttt.session.rounds\""));
    let prom = snap.to_prometheus();
    assert!(prom.contains("fttt_session_rounds"));

    // Journal side of the spine: the same run must leave a coherent trace.
    let log = journal.snapshot();
    assert!(
        log.dropped == 0 && log.events.len() as u64 == log.emitted(),
        "small campaign must fit the default ring ({} events, {} dropped)",
        log.events.len(),
        log.dropped
    );
    let named =
        |name: &str| -> Vec<&TraceEvent> { log.events.iter().filter(|e| e.name == name).collect() };
    // Session layer: one round event per session round, carrying the
    // explainability args the `explain` subcommand renders.
    let rounds = named("fttt.session.round");
    assert_eq!(
        rounds.len() as u64,
        counter("fttt.session.rounds"),
        "every metrics-counted round must also be journaled"
    );
    for r in &rounds {
        for key in [
            "t",
            "status_before",
            "status",
            "cause",
            "missing",
            "k_after",
        ] {
            assert!(
                r.args.iter().any(|(k, _)| *k == key),
                "round event lacks `{key}`: {:?}",
                r.args
            );
        }
    }
    fn cause_of(e: &TraceEvent) -> Option<&str> {
        e.args
            .iter()
            .find(|(k, _)| *k == "cause")
            .and_then(|(_, v)| {
                if let wsn_telemetry::ArgValue::Str(s) = v {
                    Some(s.as_str())
                } else {
                    None
                }
            })
    }
    // The 6 s outage must surface as blackout-caused rounds.
    assert!(
        rounds.iter().any(|r| cause_of(r) == Some("blackout")),
        "no blackout-caused round despite the outage window"
    );
    // Matcher + sampler + regime layers journal instants too.
    assert!(!named("fttt.match.heuristic").is_empty());
    assert!(!named("wsn.sampler.grouping").is_empty());
    assert!(!named("wsn.regime.apply").is_empty());
    // Indexed-matcher layer: counters and journal must tell the same
    // story — one instant per call, per-event chunk args summing to the
    // aggregate counters, and the scanned/pruned split exhaustive.
    let indexed_calls = counter("fttt.match.indexed.calls");
    assert!(indexed_calls >= 3, "{:?}", snap.counters);
    assert_eq!(
        counter("fttt.match.index.chunks_total"),
        counter("fttt.match.index.chunks_scanned") + counter("fttt.match.index.chunks_pruned"),
        "every chunk bound is either scanned or pruned"
    );
    let index_events = named("fttt.match.index");
    assert_eq!(
        index_events.len() as u64,
        indexed_calls,
        "every indexed match must journal exactly one instant"
    );
    let arg_sum = |key: &str| -> u64 {
        index_events
            .iter()
            .map(|e| {
                e.args
                    .iter()
                    .find(|(k, _)| *k == key)
                    .map_or(0, |(_, v)| match v {
                        wsn_telemetry::ArgValue::U64(n) => *n,
                        _ => 0,
                    })
            })
            .sum()
    };
    assert_eq!(arg_sum("chunks"), counter("fttt.match.index.chunks_total"));
    assert_eq!(
        arg_sum("scanned"),
        counter("fttt.match.index.chunks_scanned")
    );
    assert_eq!(arg_sum("pruned"), counter("fttt.match.index.chunks_pruned"));
    // And the whole log round-trips through both exporters.
    assert!(log.to_chrome_json().contains("\"traceEvents\""));
    assert!(log.to_jsonl().starts_with("{\"kind\":\"meta\""));
}
