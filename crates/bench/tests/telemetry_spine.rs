//! End-to-end telemetry spine test: install a sink, run a small campaign
//! schedule through the real session/sampler/regime/matcher stack, and
//! assert that every instrumented layer reported. Lives in its own file
//! (= its own test process) so the installed global sink can never leak
//! into the sink-free overhead test.

use fttt_bench::robustness::{run_custom_schedule, CampaignConfig};
use std::sync::Arc;
use wsn_network::Schedule;

#[test]
fn campaign_populates_every_telemetry_layer() {
    let registry = Arc::new(wsn_telemetry::Registry::new());
    wsn_telemetry::install(Arc::clone(&registry));
    let cfg = CampaignConfig {
        seed: 42,
        trials: 2,
        duration: 20.0,
        nodes: 8,
    };
    let schedule = Schedule::parse("outage from=8 until=14").unwrap();
    let rows = run_custom_schedule(&cfg, "outage", &schedule);
    wsn_telemetry::uninstall();
    assert_eq!(rows.len(), 2);

    let snap = registry.snapshot();
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);

    // Build layer: one face map per trial per method.
    assert!(counter("fttt.build.calls") >= 4, "{:?}", snap.counters);
    assert!(counter("fttt.build.faces") > 0);
    assert!(snap.histograms.contains_key("fttt.build.total"));
    // Matcher layer: the session methods run the heuristic matcher.
    assert!(
        counter("fttt.match.heuristic.calls") > 0,
        "{:?}",
        snap.counters
    );
    assert!(counter("fttt.match.evaluations") > 0);
    // Session layer: rounds always tick; a 6 s blackout forces status
    // transitions (and Lost) in every trial.
    assert!(counter("fttt.session.rounds") > 0);
    assert!(
        counter("fttt.session.transitions") > 0,
        "{:?}",
        snap.counters
    );
    assert!(counter("fttt.session.to_lost") > 0, "{:?}", snap.counters);
    // Regime layer: the outage entry applies every round and drops every
    // delivered reading inside its window.
    assert!(counter("wsn.regime.activations") > 0, "{:?}", snap.counters);
    assert!(
        counter("wsn.regime.readings_dropped") > 0,
        "{:?}",
        snap.counters
    );
    // Sampler layer: groupings and delivered readings.
    assert!(counter("wsn.sampler.groupings") > 0);
    assert!(counter("wsn.sampler.readings_delivered") > 0);

    // The exporters agree with the snapshot on this real workload.
    let json = snap.to_json();
    assert!(json.contains("\"fttt.session.rounds\""));
    let prom = snap.to_prometheus();
    assert!(prom.contains("fttt_session_rounds"));
}
