//! Tier-1 replay smoke test: record a tiny campaign's journal, re-run it
//! from its own header via the replay diff, and require a faithful
//! round-for-round reproduction — then perturb the seed and require the
//! diff to reject the recording with the first divergent round named.
//!
//! Kept deliberately small (2 trials × 5 s × 8 nodes, one custom
//! schedule) so it stays well under the tier-1 time budget.
//!
//! The trace journal sink is process-global, so everything lives in one
//! `#[test]` — integration tests in this file run in one process and must
//! not install journals concurrently.

use std::sync::Arc;

use fttt_bench::replay::{parse_recording, replay_and_diff};
use fttt_bench::robustness::{
    campaign_cells, campaign_checksum, run_campaign_stats, CampaignConfig, CampaignKind,
};
use wsn_telemetry::Journal;

#[test]
fn recorded_campaign_replays_faithfully_and_rejects_perturbation() {
    let cfg = CampaignConfig {
        seed: 3,
        trials: 2,
        duration: 5.0,
        nodes: 8,
    };
    let kind = CampaignKind::Custom {
        label: "smoke".into(),
        schedule: "static node_failure=0.3".into(),
    };

    // Record: run under a journal and keep the JSONL serialization —
    // exactly what `fttt-sim campaign --trace-out run.jsonl` writes.
    let journal = Arc::new(Journal::with_capacity(1 << 16));
    wsn_telemetry::install_journal(Arc::clone(&journal));
    let stats = run_campaign_stats(&cfg, &kind, 1, 0);
    wsn_telemetry::uninstall_journal();
    let log = journal.snapshot();
    assert_eq!(log.dropped, 0, "smoke journal must not drop events");
    let recorded_text = log.to_jsonl();

    let rec = parse_recording(&recorded_text).expect("recording parses");
    assert_eq!(rec.cfg, cfg, "header round-trips the config");
    assert_eq!(rec.kind, kind, "header round-trips the kind + schedule");
    assert_eq!(rec.trials.len(), 2 * cfg.trials, "2 methods x trials");
    assert!(!rec.rounds.is_empty(), "recording holds round events");

    // Replay: zero divergences, and the diff's live checksum equals the
    // recording run's own checksum.
    let report = replay_and_diff(&rec).expect("replay runs");
    assert!(
        report.is_faithful(),
        "faithful recording diverged: {:?}",
        report.divergences.first()
    );
    assert_eq!(report.recorded_rounds, report.live_rounds);
    let cells = campaign_cells(&kind);
    assert_eq!(
        report.checksum,
        campaign_checksum(&cfg, &cells, stats.map_digest, &stats.stats),
        "replay checksum must equal the original run's"
    );

    // The Chrome serialization parses back to the same recording.
    let chrome = parse_recording(&log.to_chrome_json()).expect("chrome form parses");
    assert_eq!(chrome, rec, "both serializations decode identically");

    // Perturb: same recording, different seed in the header — the live
    // run must diverge, and the first divergence must name a round.
    let mut perturbed = rec.clone();
    perturbed.cfg.seed = cfg.seed + 1;
    let report = replay_and_diff(&perturbed).expect("perturbed replay runs");
    assert!(
        !report.is_faithful(),
        "a different seed cannot reproduce the recording"
    );
    let first = &report.divergences[0];
    assert!(
        first.round.is_some(),
        "first divergence should be a concrete round, got {first:?}"
    );
}
