//! Property-based tests for the baseline trackers.

use fttt::vector::SamplingVector;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use wsn_baselines::{one_shot_vector, DirectMle, ParticleFilter, PathMatching, WeightedCentroid};
use wsn_geometry::{Point, Rect};
use wsn_network::{pair_count, Deployment, GroupSampler, SensorField};
use wsn_signal::PathLossModel;

fn world(n: usize, seed: u64) -> (SensorField, GroupSampler) {
    let field = Rect::square(100.0);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let d = Deployment::random_uniform(n, field, &mut rng);
    let sf = SensorField::new(d, 150.0);
    let sampler = GroupSampler::new(PathLossModel::paper_default(), 5);
    (sf, sampler)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// One-shot vectors have the canonical dimension and only use the
    /// ternary alphabet (plus '*').
    #[test]
    fn one_shot_vector_shape(n in 2usize..10, seed in 0u64..500, x in 5.0..95.0f64, y in 5.0..95.0f64) {
        let (sf, sampler) = world(n, seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed + 1);
        let g = sampler.sample(&sf, Point::new(x, y), &mut rng);
        let v: SamplingVector = one_shot_vector(&g);
        prop_assert_eq!(v.len(), pair_count(n));
        prop_assert!(v.is_ternary());
    }

    /// Every baseline's estimates stay inside the monitored field for
    /// arbitrary targets and seeds.
    #[test]
    fn estimates_stay_in_field(seed in 0u64..200, x in 1.0..99.0f64, y in 1.0..99.0f64) {
        let field = Rect::square(100.0);
        let (sf, sampler) = world(8, seed);
        let positions = sf.deployment().positions();
        let mut rng = ChaCha8Rng::seed_from_u64(seed + 7);
        let g = sampler.sample(&sf, Point::new(x, y), &mut rng);

        let mle = DirectMle::new(&positions, field, 4.0);
        let (est, _) = mle.localize(&g);
        prop_assert!(field.contains(est), "DirectMLE escaped: {}", est);

        let mut pm = PathMatching::new(&positions, field, 4.0, 5.0, 0.5);
        let (est, _, _, _) = pm.localize(&g);
        prop_assert!(field.contains(est), "PM escaped: {}", est);

        let wcl = WeightedCentroid::with_path_loss_degree(&positions, field, 4.0);
        prop_assert!(field.contains(wcl.localize(&g)));

        let mut pf = ParticleFilter::new(
            &positions, field, PathLossModel::paper_default(), 100, 5.0, 0.5);
        prop_assert!(field.contains(pf.localize(&g, &mut rng)));
    }

    /// PM with an enormous velocity bound and full forgetting behaves like
    /// Direct MLE on the very first localization (both reduce to one-shot
    /// ML matching from a cold start).
    #[test]
    fn pm_cold_start_matches_mle(seed in 0u64..200, x in 10.0..90.0f64, y in 10.0..90.0f64) {
        let field = Rect::square(100.0);
        let (sf, sampler) = world(6, seed);
        let positions = sf.deployment().positions();
        let mut rng = ChaCha8Rng::seed_from_u64(seed + 3);
        let g = sampler.sample(&sf, Point::new(x, y), &mut rng);
        let mle = DirectMle::new(&positions, field, 4.0);
        let mut pm = PathMatching::new(&positions, field, 4.0, 1e6, 0.5);
        let (est_mle, _) = mle.localize(&g);
        let (est_pm, _, _, _) = pm.localize(&g);
        prop_assert!(
            est_mle.distance(est_pm) < 1e-9,
            "cold-start mismatch: MLE {} vs PM {}", est_mle, est_pm
        );
    }
}
