//! Direct MLE: memoryless one-shot sequence matching on certain faces.

use crate::one_shot::one_shot_vector;
use fttt::facemap::FaceMap;
use fttt::matching::{match_exhaustive, MatchOutcome};
use fttt::tracker::{Localization, TrackingRun};
use rand::Rng;
use wsn_geometry::{Point, Rect};
use wsn_mobility::Trace;
use wsn_network::{GroupSampler, GroupSampling, SensorField};

/// The Direct-MLE tracker (paper ref. [24]'s sequence localization used as
/// a tracking baseline): perpendicular-bisector face division (`C = 1`),
/// one-shot detection sequences, exhaustive maximum-likelihood matching,
/// no temporal state.
#[derive(Debug, Clone)]
pub struct DirectMle {
    map: FaceMap,
}

impl DirectMle {
    /// Builds the baseline's certain-face division for sensors at
    /// `positions` over `field`, rasterized at `cell_size` metres.
    pub fn new(positions: &[Point], field: Rect, cell_size: f64) -> Self {
        // C = 1: the uncertain band degenerates to the bisector itself.
        Self {
            map: FaceMap::build_with_threads(
                positions,
                field,
                1.0,
                cell_size,
                wsn_parallel::recommended_threads(),
            ),
        }
    }

    /// The underlying face map.
    pub fn map(&self) -> &FaceMap {
        &self.map
    }

    /// Localizes one grouping sampling (only its newest instant is used).
    pub fn localize(&self, group: &GroupSampling) -> (Point, MatchOutcome) {
        let v = one_shot_vector(group);
        let outcome = match_exhaustive(&self.map, &v);
        let estimate = if outcome.ties.len() > 1 {
            let mut x = 0.0;
            let mut y = 0.0;
            for &id in &outcome.ties {
                let c = self.map.face(id).centroid;
                x += c.x;
                y += c.y;
            }
            let n = outcome.ties.len() as f64;
            Point::new(x / n, y / n)
        } else {
            self.map.face(outcome.face).centroid
        };
        (estimate, outcome)
    }

    /// Tracks a target along `trace`, one localization per trace point.
    pub fn track<R: Rng + ?Sized>(
        &self,
        field: &SensorField,
        sampler: &GroupSampler,
        trace: &Trace,
        rng: &mut R,
    ) -> TrackingRun {
        let mut localizations = Vec::with_capacity(trace.len());
        for p in trace.points() {
            let group = sampler.sample(field, p.pos, rng);
            let (estimate, outcome) = self.localize(&group);
            localizations.push(Localization {
                t: p.t,
                truth: p.pos,
                estimate,
                face: outcome.face,
                similarity: outcome.similarity,
                error: estimate.distance(p.pos),
                evaluated: outcome.evaluated,
            });
        }
        TrackingRun { localizations }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use wsn_mobility::WaypointPath;
    use wsn_network::Deployment;
    use wsn_signal::PathLossModel;

    fn rng(seed: u64) -> rand_chacha::ChaCha8Rng {
        rand_chacha::ChaCha8Rng::seed_from_u64(seed)
    }

    fn setup(sigma: f64) -> (SensorField, DirectMle, GroupSampler) {
        let field = Rect::square(100.0);
        let deployment = Deployment::grid(9, field);
        let sensor_field = SensorField::new(deployment, 150.0);
        let mle = DirectMle::new(&sensor_field.deployment().positions(), field, 2.0);
        let sampler = GroupSampler::new(PathLossModel::new(-40.0, 0.0, 4.0, sigma), 5);
        (sensor_field, mle, sampler)
    }

    #[test]
    fn map_is_the_certain_division() {
        let (_, mle, _) = setup(0.0);
        assert_eq!(mle.map().uncertainty_constant(), 1.0);
        // Essentially every face of a bisector division is certain.
        assert!(mle.map().certain_face_count() as f64 >= 0.9 * mle.map().face_count() as f64);
    }

    #[test]
    fn noiseless_one_shot_is_accurate() {
        let (field, mle, sampler) = setup(0.0);
        let trace = WaypointPath::new(vec![Point::new(20.0, 50.0), Point::new(80.0, 50.0)])
            .walk_constant(3.0, 1.0);
        let run = mle.track(&field, &sampler, &trace, &mut rng(1));
        assert!(
            run.error_stats().mean < 8.0,
            "mean {}",
            run.error_stats().mean
        );
    }

    #[test]
    fn noise_degrades_it_substantially() {
        let (field, mle, sampler) = setup(6.0);
        let trace = WaypointPath::new(vec![Point::new(20.0, 50.0), Point::new(80.0, 50.0)])
            .walk_constant(3.0, 1.0);
        let clean = setup(0.0);
        let run_noisy = mle.track(&field, &sampler, &trace, &mut rng(2));
        let run_clean = clean.1.track(&clean.0, &clean.2, &trace, &mut rng(2));
        assert!(
            run_noisy.error_stats().mean > run_clean.error_stats().mean,
            "noise must hurt the certain-sequence method"
        );
    }

    #[test]
    fn localize_is_memoryless() {
        let (field, mle, sampler) = setup(6.0);
        let g = sampler.sample(&field, Point::new(30.0, 30.0), &mut rng(3));
        let (a, _) = mle.localize(&g);
        let (b, _) = mle.localize(&g);
        assert_eq!(a, b, "same input, same output, no hidden state");
    }
}
