//! PM: path matching with MLE under a maximum-velocity constraint.

use crate::one_shot::one_shot_vector;
use fttt::facemap::{FaceId, FaceMap};
use fttt::tracker::{Localization, TrackingRun};
use fttt::vector::{similarity, PackedQuery, SamplingVector};
use rand::Rng;
use wsn_geometry::{Point, Rect};
use wsn_mobility::Trace;
use wsn_network::{GroupSampler, GroupSampling, SensorField};

/// The PM tracker (paper ref. [22]'s optimal path matching, reproduced as
/// an online beam Viterbi):
///
/// * certain-face division (`C = 1` bisectors) and one-shot sequences,
///   like [`crate::DirectMle`];
/// * a beam of path hypotheses, each a face with a cumulative
///   log-likelihood score (negative sequence distance);
/// * hypotheses only extend to faces reachable within `v_max·Δt` (plus the
///   two faces' radii — faces are regions, not points), the assumed-
///   maximum-velocity constraint the paper criticizes PM for needing.
///
/// The published algorithm solves the path assignment over a bounded
/// trace window; the beam recursion here is the online form of the same
/// dynamic program, with two knobs that emulate the finite window:
///
/// * **forgetting** `γ ∈ (0, 1]` — previous path scores decay by `γ` per
///   step, bounding the effective memory to `≈ 1/(1−γ)` localizations the
///   way the published window does (with `γ = 1` evidence accumulates
///   forever and one bad lock-in poisons the rest of the trace);
/// * **jump penalty** — transitions that violate the velocity constraint
///   are either forbidden (`None`, the strict published rule) or charged a
///   fixed score penalty, letting strong fresh evidence override a wrong
///   path hypothesis as the window-limited batch algorithm would.
///
/// Per-step cost is `O(beam × faces)`.
#[derive(Debug, Clone)]
pub struct PathMatching {
    map: FaceMap,
    max_speed: f64,
    dt: f64,
    beam_width: usize,
    /// Per-step decay of accumulated path scores (default 0.7).
    forgetting: f64,
    /// Score charge for a constraint-violating transition; `None` forbids
    /// them outright (default `Some(2.0)`).
    jump_penalty: Option<f64>,
    /// Current hypotheses: `(face, cumulative score)`, best first.
    beam: Vec<(FaceId, f64)>,
}

impl PathMatching {
    /// Builds the tracker.
    ///
    /// `max_speed` is the *assumed* maximum target speed (m/s), `dt` the
    /// time between localizations (s).
    ///
    /// # Panics
    ///
    /// Panics unless `max_speed` and `dt` are strictly positive.
    pub fn new(positions: &[Point], field: Rect, cell_size: f64, max_speed: f64, dt: f64) -> Self {
        assert!(
            max_speed > 0.0 && max_speed.is_finite(),
            "max speed must be positive"
        );
        assert!(dt > 0.0 && dt.is_finite(), "dt must be positive");
        let map = FaceMap::build_with_threads(
            positions,
            field,
            1.0,
            cell_size,
            wsn_parallel::recommended_threads(),
        );
        Self {
            map,
            max_speed,
            dt,
            beam_width: 64,
            forgetting: 1.0,
            jump_penalty: None,
            beam: Vec::new(),
        }
    }

    /// The strict published formulation — no score forgetting, hard
    /// velocity constraint. This **is** the default; the method exists so
    /// call sites can state the choice explicitly next to
    /// [`PathMatching::robust`].
    pub fn strict(mut self) -> Self {
        self.forgetting = 1.0;
        self.jump_penalty = None;
        self
    }

    /// A windowed/robust variant: exponential score forgetting (γ = 0.7)
    /// and a soft penalty (2.0) for constraint-violating jumps, letting
    /// strong fresh evidence override a locked-in path hypothesis. In our
    /// measurements (`ablation_pm`) the strict form with tie-averaged
    /// estimates is already competitive; the knobs remain for studying the
    /// lock-in behaviour.
    pub fn robust(mut self) -> Self {
        self.forgetting = 0.7;
        self.jump_penalty = Some(2.0);
        self
    }

    /// The underlying face map.
    pub fn map(&self) -> &FaceMap {
        &self.map
    }

    /// Replaces the beam width (default 64).
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn with_beam_width(mut self, width: usize) -> Self {
        assert!(width > 0, "beam width must be positive");
        self.beam_width = width;
        self
    }

    /// Drops all path hypotheses (target lost / new track).
    pub fn reset(&mut self) {
        self.beam.clear();
    }

    /// Localizes one grouping sampling, advancing the path beam.
    pub fn localize(&mut self, group: &GroupSampling) -> (Point, FaceId, f64, usize) {
        let v: SamplingVector = one_shot_vector(group);
        let faces = self.map.faces();
        // Per-face observation cost: sequence distance (lower = better),
        // computed with the packed bit-plane kernel.
        let q = PackedQuery::new(&v);
        let planes = self.map.planes();
        let dists: Vec<f64> = faces
            .iter()
            .map(|f| planes.distance_squared(f.id.index(), &q).sqrt())
            .collect();

        let reach = self.max_speed * self.dt;
        let mut scored: Vec<(FaceId, f64)> = if self.beam.is_empty() {
            faces.iter().map(|f| (f.id, -dists[f.id.index()])).collect()
        } else {
            faces
                .iter()
                .filter_map(|f| {
                    // A face is reachable from a hypothesis if the closest
                    // points of the two regions (conservatively, their
                    // bounding boxes) are within v_max·Δt; unreachable
                    // transitions pay the jump penalty (or are dropped).
                    let best_prev = self
                        .beam
                        .iter()
                        .filter_map(|&(pid, score)| {
                            if self.map.face(pid).bbox.distance_to(&f.bbox) <= reach {
                                Some(self.forgetting * score)
                            } else {
                                self.jump_penalty.map(|pen| self.forgetting * score - pen)
                            }
                        })
                        .fold(f64::NEG_INFINITY, f64::max);
                    (best_prev > f64::NEG_INFINITY).then(|| (f.id, best_prev - dists[f.id.index()]))
                })
                .collect()
        };
        if scored.is_empty() {
            // Every hypothesis died (target out-ran the assumed v_max):
            // restart from scratch, exactly the failure mode the paper
            // attributes to PM.
            scored = faces.iter().map(|f| (f.id, -dists[f.id.index()])).collect();
        }
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("scores are finite"));
        // Tie-average the estimate over all top-scoring faces (the same
        // rule the other trackers use — with integer-quantized sequence
        // distances, ties are the norm, not the exception).
        let top = scored[0].1;
        let mut x = 0.0;
        let mut y = 0.0;
        let mut ties = 0usize;
        for &(id, score) in &scored {
            if score < top {
                break;
            }
            let c = self.map.face(id).centroid;
            x += c.x;
            y += c.y;
            ties += 1;
        }
        let estimate = Point::new(x / ties as f64, y / ties as f64);

        scored.truncate(self.beam_width);
        // Renormalize so cumulative scores do not drift to −∞ over long
        // traces (only score differences matter).
        for s in &mut scored {
            s.1 -= top;
        }
        let best = scored[0].0;
        let evaluated = faces.len();
        self.beam = scored;
        let sim = similarity(&v, &self.map.face(best).signature);
        (estimate, best, sim, evaluated)
    }

    /// Tracks a target along `trace`, one localization per trace point.
    pub fn track<R: Rng + ?Sized>(
        &mut self,
        field: &SensorField,
        sampler: &GroupSampler,
        trace: &Trace,
        rng: &mut R,
    ) -> TrackingRun {
        let mut localizations = Vec::with_capacity(trace.len());
        for p in trace.points() {
            let group = sampler.sample(field, p.pos, rng);
            let (estimate, face, sim, evaluated) = self.localize(&group);
            localizations.push(Localization {
                t: p.t,
                truth: p.pos,
                estimate,
                face,
                similarity: sim,
                error: estimate.distance(p.pos),
                evaluated,
            });
        }
        TrackingRun { localizations }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use wsn_mobility::WaypointPath;
    use wsn_network::Deployment;
    use wsn_signal::PathLossModel;

    fn rng(seed: u64) -> rand_chacha::ChaCha8Rng {
        rand_chacha::ChaCha8Rng::seed_from_u64(seed)
    }

    fn setup(sigma: f64) -> (SensorField, PathMatching, GroupSampler) {
        let field = Rect::square(100.0);
        let deployment = Deployment::grid(9, field);
        let sensor_field = SensorField::new(deployment, 150.0);
        let pm = PathMatching::new(&sensor_field.deployment().positions(), field, 2.0, 5.0, 1.0);
        let sampler = GroupSampler::new(PathLossModel::new(-40.0, 0.0, 4.0, sigma), 5);
        (sensor_field, pm, sampler)
    }

    fn straight() -> Trace {
        WaypointPath::new(vec![Point::new(20.0, 50.0), Point::new(80.0, 50.0)])
            .walk_constant(3.0, 1.0)
    }

    #[test]
    fn noiseless_path_tracking_is_accurate() {
        let (field, mut pm, sampler) = setup(0.0);
        let run = pm.track(&field, &sampler, &straight(), &mut rng(1));
        assert!(
            run.error_stats().mean < 8.0,
            "mean {}",
            run.error_stats().mean
        );
    }

    #[test]
    fn velocity_constraint_smooths_versus_direct_mle() {
        use crate::direct_mle::DirectMle;
        let (field, mut pm, sampler) = setup(6.0);
        let mle = DirectMle::new(&field.deployment().positions(), Rect::square(100.0), 2.0);
        let trace = straight();
        let mut pm_means = Vec::new();
        let mut mle_means = Vec::new();
        for seed in 0..6 {
            pm.reset();
            pm_means.push(
                pm.track(&field, &sampler, &trace, &mut rng(10 + seed))
                    .error_stats()
                    .mean,
            );
            mle_means.push(
                mle.track(&field, &sampler, &trace, &mut rng(10 + seed))
                    .error_stats()
                    .mean,
            );
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            avg(&pm_means) <= avg(&mle_means) * 1.05,
            "PM {} vs Direct MLE {}",
            avg(&pm_means),
            avg(&mle_means)
        );
    }

    #[test]
    fn beam_state_is_resettable() {
        let (field, mut pm, sampler) = setup(6.0);
        let g = sampler.sample(&field, Point::new(30.0, 30.0), &mut rng(3));
        let _ = pm.localize(&g);
        assert!(!pm.beam.is_empty());
        pm.reset();
        assert!(pm.beam.is_empty());
    }

    #[test]
    fn survives_target_outrunning_vmax() {
        // A 2 m/s assumed v_max against a 12 m/s target: hypotheses keep
        // dying; the tracker must restart rather than wedge.
        let field_rect = Rect::square(100.0);
        let deployment = Deployment::grid(9, field_rect);
        let field = SensorField::new(deployment, 150.0);
        let mut pm = PathMatching::new(&field.deployment().positions(), field_rect, 2.0, 2.0, 1.0);
        let sampler = GroupSampler::new(PathLossModel::new(-40.0, 0.0, 4.0, 6.0), 5);
        let fast = WaypointPath::new(vec![Point::new(10.0, 10.0), Point::new(90.0, 90.0)])
            .walk_constant(12.0, 1.0);
        let run = pm.track(&field, &sampler, &fast, &mut rng(4));
        assert!(run.error_stats().mean.is_finite());
    }

    #[test]
    #[should_panic(expected = "beam width")]
    fn zero_beam_rejected() {
        let (field, pm, _) = setup(0.0);
        let _ = field;
        let _ = pm.with_beam_width(0);
    }
}
