//! An extended Kalman filter tracker: the classic recursive model-based
//! comparator (paper ref. [18]).
//!
//! * **State** `x = [pₓ, p_y, vₓ, v_y]`, constant-velocity process with
//!   white-acceleration noise.
//! * **Measurement** the mean group RSS of each responding node;
//!   `h_i(x) = PL(d₀) − 10β·log10(‖p − s_i‖)` is nonlinear, so the update
//!   linearizes around the predicted state (the "extended" part) with
//!   `∂h_i/∂p = −(10β/ln 10)·(p − s_i)/d²`.
//! * **Update** processed **sequentially** per node: with a diagonal
//!   measurement covariance each scalar update needs only `4×4` algebra,
//!   no matrix inversion — the textbook trick that keeps mote-class
//!   implementations feasible.
//!
//! Like the particle filter it consumes absolute RSS and a motion model,
//! inheriting both of their failure modes (calibration error, model
//! mismatch); unlike it, the Gaussian posterior cannot represent the
//! multi-modal ambiguity RSS rings create, so it needs a sane
//! initialization (we use the weighted centroid of the first sampling).

use fttt::tracker::{Localization, TrackingRun};
use rand::Rng;
use wsn_geometry::{Point, Rect};
use wsn_mobility::Trace;
use wsn_network::{GroupSampler, GroupSampling, SensorField};
use wsn_signal::PathLossModel;

/// A 4×4 matrix in row-major order (tiny fixed-size algebra, no deps).
type Mat4 = [[f64; 4]; 4];
type Vec4 = [f64; 4];

fn mat_identity() -> Mat4 {
    let mut m = [[0.0; 4]; 4];
    for (i, row) in m.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    m
}

fn mat_mul(a: &Mat4, b: &Mat4) -> Mat4 {
    let mut out = [[0.0; 4]; 4];
    for i in 0..4 {
        for j in 0..4 {
            let mut s = 0.0;
            for (k, bk) in b.iter().enumerate() {
                s += a[i][k] * bk[j];
            }
            out[i][j] = s;
        }
    }
    out
}

fn mat_transpose(a: &Mat4) -> Mat4 {
    let mut out = [[0.0; 4]; 4];
    for (i, row) in a.iter().enumerate() {
        for (j, v) in row.iter().enumerate() {
            out[j][i] = *v;
        }
    }
    out
}

fn mat_add(a: &Mat4, b: &Mat4) -> Mat4 {
    let mut out = *a;
    for (row, brow) in out.iter_mut().zip(b.iter()) {
        for (v, bv) in row.iter_mut().zip(brow.iter()) {
            *v += bv;
        }
    }
    out
}

fn mat_vec(a: &Mat4, v: &Vec4) -> Vec4 {
    let mut out = [0.0; 4];
    for (o, row) in out.iter_mut().zip(a.iter()) {
        *o = row.iter().zip(v.iter()).map(|(a, b)| a * b).sum();
    }
    out
}

/// The EKF tracker.
#[derive(Debug, Clone)]
pub struct ExtendedKalman {
    field: Rect,
    positions: Vec<Point>,
    model: PathLossModel,
    /// Acceleration noise std, m/s² (process noise intensity).
    pub accel_std: f64,
    /// Time between localizations, seconds.
    pub dt: f64,
    state: Vec4,
    cov: Mat4,
    initialized: bool,
}

impl ExtendedKalman {
    /// Creates the filter.
    ///
    /// # Panics
    ///
    /// Panics unless at least two sensors are given and `dt` is positive
    /// and finite.
    pub fn new(positions: &[Point], field: Rect, model: PathLossModel, dt: f64) -> Self {
        assert!(positions.len() >= 2, "need at least two sensors");
        assert!(dt > 0.0 && dt.is_finite(), "dt must be positive");
        Self {
            field,
            positions: positions.to_vec(),
            model,
            accel_std: 1.0,
            dt,
            state: [0.0; 4],
            cov: mat_identity(),
            initialized: false,
        }
    }

    /// Forgets the track.
    pub fn reset(&mut self) {
        self.initialized = false;
    }

    /// Current position estimate.
    pub fn position(&self) -> Point {
        Point::new(self.state[0], self.state[1])
    }

    fn mean_observations(&self, group: &GroupSampling) -> Vec<(usize, f64)> {
        (0..group.node_count())
            .filter_map(|j| {
                let mut sum = 0.0;
                let mut n = 0usize;
                for r in group.column(j).flatten() {
                    sum += r.dbm();
                    n += 1;
                }
                (n > 0).then(|| (j, sum / n as f64))
            })
            .collect()
    }

    fn initialize(&mut self, observations: &[(usize, f64)]) {
        // Weighted-centroid warm start with a wide prior.
        let mut wx = 0.0;
        let mut wy = 0.0;
        let mut wsum = 0.0;
        for &(j, dbm) in observations {
            let w = 10f64.powf(dbm / (10.0 * self.model.beta));
            wx += w * self.positions[j].x;
            wy += w * self.positions[j].y;
            wsum += w;
        }
        let start = if wsum > 0.0 {
            self.field.clamp(Point::new(wx / wsum, wy / wsum))
        } else {
            self.field.center()
        };
        self.state = [start.x, start.y, 0.0, 0.0];
        self.cov = [[0.0; 4]; 4];
        let side = self.field.width().max(self.field.height());
        self.cov[0][0] = (side / 4.0) * (side / 4.0);
        self.cov[1][1] = self.cov[0][0];
        self.cov[2][2] = 9.0; // ±3 m/s prior velocity spread
        self.cov[3][3] = 9.0;
        self.initialized = true;
    }

    fn predict(&mut self) {
        let dt = self.dt;
        let mut f = mat_identity();
        f[0][2] = dt;
        f[1][3] = dt;
        self.state = mat_vec(&f, &self.state);
        // Q for white acceleration: blocks [dt⁴/4, dt³/2; dt³/2, dt²]·σ².
        let q2 = self.accel_std * self.accel_std;
        let (q11, q12, q22) = (dt.powi(4) / 4.0 * q2, dt.powi(3) / 2.0 * q2, dt * dt * q2);
        let mut q = [[0.0; 4]; 4];
        q[0][0] = q11;
        q[1][1] = q11;
        q[0][2] = q12;
        q[2][0] = q12;
        q[1][3] = q12;
        q[3][1] = q12;
        q[2][2] = q22;
        q[3][3] = q22;
        self.cov = mat_add(&mat_mul(&mat_mul(&f, &self.cov), &mat_transpose(&f)), &q);
    }

    fn scalar_update(&mut self, node: usize, observed_dbm: f64, r_var: f64) {
        let s = self.positions[node];
        let p = self.position();
        let dx = p.x - s.x;
        let dy = p.y - s.y;
        // Floor at 1 m²: below the reference distance the log-linear model
        // (and its gradient) is meaningless, and an unbounded gradient
        // produces teleporting updates.
        let d2 = (dx * dx + dy * dy).max(1.0);
        let d = d2.sqrt();
        let predicted = self.model.mean_rss(d).dbm();
        // H = [∂h/∂pₓ, ∂h/∂p_y, 0, 0].
        let g = -10.0 * self.model.beta / std::f64::consts::LN_10;
        let h = [g * dx / d2, g * dy / d2, 0.0, 0.0];
        // S = H P Hᵀ + r (scalar).
        let ph = mat_vec(&self.cov, &h);
        let s_inn: f64 = h.iter().zip(&ph).map(|(a, b)| a * b).sum::<f64>() + r_var;
        if s_inn <= 0.0 || s_inn.is_nan() {
            return;
        }
        let innovation = observed_dbm - predicted;
        // χ² gate: an innovation beyond 3σ is more likely a linearization
        // failure (RSS rings are not Gaussian in position) than signal —
        // absorbing it would teleport the posterior.
        if innovation * innovation > 9.0 * s_inn {
            return;
        }
        let gain: Vec4 = [ph[0] / s_inn, ph[1] / s_inn, ph[2] / s_inn, ph[3] / s_inn];
        for (x, k) in self.state.iter_mut().zip(&gain) {
            *x += k * innovation;
        }
        // P ← (I − K H) P, then symmetrize against round-off.
        let mut kh = [[0.0; 4]; 4];
        for (i, krow) in kh.iter_mut().enumerate() {
            for (j, v) in krow.iter_mut().enumerate() {
                *v = gain[i] * h[j];
            }
        }
        let mut ikh = mat_identity();
        for i in 0..4 {
            for j in 0..4 {
                ikh[i][j] -= kh[i][j];
            }
        }
        self.cov = mat_mul(&ikh, &self.cov);
        for i in 0..4 {
            for j in (i + 1)..4 {
                let avg = 0.5 * (self.cov[i][j] + self.cov[j][i]);
                self.cov[i][j] = avg;
                self.cov[j][i] = avg;
            }
        }
    }

    /// One predict–update cycle over a grouping sampling.
    pub fn localize(&mut self, group: &GroupSampling) -> Point {
        let observations = self.mean_observations(group);
        if !self.initialized {
            self.initialize(&observations);
        } else {
            self.predict();
        }
        let r_var = (self.model.sigma * self.model.sigma / group.instants() as f64).max(1e-6);
        for &(j, dbm) in &observations {
            self.scalar_update(j, dbm, r_var);
        }
        // Keep the posterior inside the field (the linearization knows
        // nothing about walls), and re-open the position covariance when
        // the wall actually bites — otherwise a confident-but-wrong
        // posterior pinned at the boundary can never recover.
        let raw = self.position();
        let clamped = self.field.clamp(raw);
        if raw.distance(clamped) > 1e-9 {
            self.cov[0][0] += 25.0;
            self.cov[1][1] += 25.0;
        }
        self.state[0] = clamped.x;
        self.state[1] = clamped.y;
        clamped
    }

    /// Tracks a target along `trace`, one localization per trace point.
    pub fn track<R: Rng + ?Sized>(
        &mut self,
        field: &SensorField,
        sampler: &GroupSampler,
        trace: &Trace,
        rng: &mut R,
    ) -> TrackingRun {
        let mut localizations = Vec::with_capacity(trace.len());
        for p in trace.points() {
            let group = sampler.sample(field, p.pos, rng);
            let estimate = self.localize(&group);
            localizations.push(Localization {
                t: p.t,
                truth: p.pos,
                estimate,
                face: fttt::facemap::FaceId(0),
                similarity: 0.0,
                error: estimate.distance(p.pos),
                evaluated: field.len(),
            });
        }
        TrackingRun { localizations }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use wsn_mobility::WaypointPath;
    use wsn_network::Deployment;

    fn rng(seed: u64) -> rand_chacha::ChaCha8Rng {
        rand_chacha::ChaCha8Rng::seed_from_u64(seed)
    }

    fn setup(sigma: f64) -> (SensorField, ExtendedKalman, GroupSampler) {
        let field = Rect::square(100.0);
        let deployment = Deployment::grid(9, field);
        let sf = SensorField::new(deployment, 150.0);
        let model = PathLossModel::new(-40.0, 0.0, 4.0, sigma);
        let ekf = ExtendedKalman::new(&sf.deployment().positions(), field, model, 1.0);
        let sampler = GroupSampler::new(model, 5);
        (sf, ekf, sampler)
    }

    #[test]
    fn matrix_helpers() {
        let i = mat_identity();
        let a: Mat4 = [
            [1.0, 2.0, 0.0, 0.0],
            [3.0, 4.0, 0.0, 0.0],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ];
        assert_eq!(mat_mul(&a, &i), a);
        assert_eq!(mat_mul(&i, &a), a);
        let at = mat_transpose(&a);
        assert_eq!(at[0][1], 3.0);
        assert_eq!(mat_vec(&a, &[1.0, 1.0, 0.0, 0.0]), [3.0, 7.0, 0.0, 0.0]);
    }

    #[test]
    fn converges_on_stationary_target() {
        let (field, mut ekf, sampler) = setup(2.0);
        let target = Point::new(62.0, 41.0);
        let mut r = rng(1);
        let mut last = Point::ORIGIN;
        for _ in 0..25 {
            let g = sampler.sample(&field, target, &mut r);
            last = ekf.localize(&g);
        }
        assert!(
            last.distance(target) < 8.0,
            "estimate {last} vs target {target}"
        );
    }

    #[test]
    fn tracks_a_straight_walk() {
        let (field, mut ekf, sampler) = setup(4.0);
        let trace = WaypointPath::new(vec![Point::new(20.0, 50.0), Point::new(80.0, 50.0)])
            .walk_constant(3.0, 1.0);
        let run = ekf.track(&field, &sampler, &trace, &mut rng(2));
        let half = run.localizations.len() / 2;
        let late: f64 = run.localizations[half..]
            .iter()
            .map(|l| l.error)
            .sum::<f64>()
            / (run.localizations.len() - half) as f64;
        assert!(late < 15.0, "late mean {late}");
    }

    #[test]
    fn estimates_stay_in_field_and_finite() {
        let (field, mut ekf, sampler) = setup(6.0);
        let mut r = rng(3);
        for i in 0..40 {
            let target = Point::new(2.0 + (i as f64 * 5.1) % 96.0, 2.0 + (i as f64 * 3.3) % 96.0);
            let g = sampler.sample(&field, target, &mut r);
            let est = ekf.localize(&g);
            assert!(est.is_finite());
            assert!(field.rect().contains(est));
        }
    }

    #[test]
    fn blackout_is_survivable() {
        let (field, mut ekf, _) = setup(6.0);
        let g = GroupSampling::empty(field.len(), 5);
        let est = ekf.localize(&g);
        assert!(field.rect().contains(est));
        // A subsequent real sampling still works.
        let sampler = GroupSampler::new(PathLossModel::new(-40.0, 0.0, 4.0, 6.0), 5);
        let g2 = sampler.sample(&field, Point::new(30.0, 70.0), &mut rng(4));
        assert!(field.rect().contains(ekf.localize(&g2)));
    }

    #[test]
    fn reset_reinitializes() {
        let (field, mut ekf, sampler) = setup(2.0);
        let mut r = rng(5);
        let g = sampler.sample(&field, Point::new(20.0, 20.0), &mut r);
        let _ = ekf.localize(&g);
        assert!(ekf.initialized);
        ekf.reset();
        assert!(!ekf.initialized);
    }

    #[test]
    #[should_panic(expected = "at least two sensors")]
    fn needs_sensors() {
        let _ = ExtendedKalman::new(
            &[Point::ORIGIN],
            Rect::square(10.0),
            PathLossModel::paper_default(),
            1.0,
        );
    }
}
