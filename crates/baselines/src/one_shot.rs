//! One-shot detection sequences, the input of the certain-sequence
//! baselines.

use fttt::vector::SamplingVector;
use wsn_network::{pair_count, GroupSampling, PairIter};

/// Builds the pairwise vector a certain-sequence method sees from a
/// **single** sampling instant (the latest of the grouping window — the
/// freshest reading available at localization time).
///
/// Pair rules mirror the fault handling of FTTT so the comparison stays
/// fair: both readings present → `+1`/`−1` by RSS order (`0` only on an
/// exact tie); one present → `±1` toward the responder; neither → `*`.
/// What distinguishes the baseline is what it *lacks*: with one sample
/// there is no flip evidence, so a target inside an uncertain area gets an
/// arbitrary — and over time, flapping — hard order.
///
/// # Panics
///
/// Panics if `group` has fewer than two node columns.
pub fn one_shot_vector(group: &GroupSampling) -> SamplingVector {
    let n = group.node_count();
    assert!(n >= 2, "need at least two nodes for pair values");
    let t = group.instants() - 1;
    let mut comps = Vec::with_capacity(pair_count(n));
    for (i, j) in PairIter::new(n) {
        let v = match (group.get(t, i), group.get(t, j)) {
            (Some(a), Some(b)) => {
                if a > b {
                    Some(1.0)
                } else if a < b {
                    Some(-1.0)
                } else {
                    Some(0.0)
                }
            }
            (Some(_), None) => Some(1.0),
            (None, Some(_)) => Some(-1.0),
            (None, None) => None,
        };
        comps.push(v);
    }
    SamplingVector::new(comps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wsn_signal::Rss;

    fn matrix(rows: Vec<Vec<Option<f64>>>) -> GroupSampling {
        GroupSampling::from_rows(
            rows.into_iter()
                .map(|r| r.into_iter().map(|v| v.map(Rss::new)).collect())
                .collect(),
        )
    }

    #[test]
    fn uses_only_the_last_instant() {
        // Earlier instants say n0 < n1; the last says n0 > n1. One-shot
        // must follow the last.
        let g = matrix(vec![
            vec![Some(-60.0), Some(-50.0)],
            vec![Some(-61.0), Some(-49.0)],
            vec![Some(-45.0), Some(-55.0)],
        ]);
        assert_eq!(one_shot_vector(&g).component(0), Some(1.0));
    }

    #[test]
    fn missing_node_rules() {
        let g = matrix(vec![vec![Some(-50.0), None, Some(-60.0)]]);
        let v = one_shot_vector(&g);
        // Pairs (0,1), (0,2), (1,2).
        assert_eq!(v.component(0), Some(1.0));
        assert_eq!(v.component(1), Some(1.0));
        assert_eq!(v.component(2), Some(-1.0));
    }

    #[test]
    fn both_missing_is_star() {
        let g = matrix(vec![vec![None, None]]);
        assert_eq!(one_shot_vector(&g).component(0), None);
    }

    #[test]
    fn exact_tie_is_zero() {
        let g = matrix(vec![vec![Some(-50.0), Some(-50.0)]]);
        assert_eq!(one_shot_vector(&g).component(0), Some(0.0));
    }
}
