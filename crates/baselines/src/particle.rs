//! A particle-filter tracker: the *model-based* comparator class.
//!
//! The paper's related work (Section 2) contrasts FTTT with model-based
//! tracking — Kalman/particle/variational filters that assume a target
//! motion model and fuse measurements over time. This module implements
//! the standard bootstrap particle filter over the same RSS substrate:
//!
//! * **State**: position + velocity per particle.
//! * **Motion model**: constant velocity with Gaussian acceleration noise
//!   (the detailed mobility assumption the paper criticizes such methods
//!   for needing).
//! * **Likelihood**: each responding node's mean group RSS vs the
//!   path-loss prediction, Gaussian in dB with the radio σ.
//! * **Resampling**: systematic, when the effective sample size drops
//!   below half the particle count.
//!
//! Unlike FTTT it uses absolute RSS values (not just pairwise order), so
//! it is sensitive to calibration error in `PL(d₀)` — the flip side the
//! paper's range-free design avoids.

use fttt::tracker::{Localization, TrackingRun};
use rand::Rng;
use wsn_geometry::{Point, Rect, Vector};
use wsn_mobility::Trace;
use wsn_network::{GroupSampler, GroupSampling, SensorField};
use wsn_signal::{Gaussian, PathLossModel};

/// One particle: position and velocity hypothesis.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Particle {
    pos: Point,
    vel: Vector,
    weight: f64,
}

/// Bootstrap particle filter over RSS grouping samplings.
#[derive(Debug, Clone)]
pub struct ParticleFilter {
    field: Rect,
    positions: Vec<Point>,
    model: PathLossModel,
    particles: Vec<Particle>,
    /// Std-dev of the per-step acceleration noise, m/s².
    pub accel_std: f64,
    /// Assumed maximum speed used to initialize velocities, m/s.
    pub max_speed: f64,
    /// Time between localizations, seconds.
    pub dt: f64,
    count: usize,
    initialized: bool,
}

impl ParticleFilter {
    /// Creates a filter with `count` particles.
    ///
    /// # Panics
    ///
    /// Panics unless `count ≥ 2`, and `dt`, `max_speed`, `accel_std` are
    /// positive and finite.
    pub fn new(
        positions: &[Point],
        field: Rect,
        model: PathLossModel,
        count: usize,
        max_speed: f64,
        dt: f64,
    ) -> Self {
        assert!(count >= 2, "need at least two particles, got {count}");
        assert!(dt > 0.0 && dt.is_finite(), "dt must be positive");
        assert!(
            max_speed > 0.0 && max_speed.is_finite(),
            "max speed must be positive"
        );
        Self {
            field,
            positions: positions.to_vec(),
            model,
            particles: Vec::with_capacity(count),
            accel_std: 1.0,
            max_speed,
            dt,
            count,
            initialized: false,
        }
    }

    /// Forgets all particles (new track).
    pub fn reset(&mut self) {
        self.particles.clear();
        self.initialized = false;
    }

    fn initialize<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.particles = (0..self.count)
            .map(|_| {
                let pos = Point::new(
                    rng.gen_range(self.field.min.x..=self.field.max.x),
                    rng.gen_range(self.field.min.y..=self.field.max.y),
                );
                let speed = rng.gen_range(0.0..=self.max_speed);
                let theta = rng.gen_range(0.0..std::f64::consts::TAU);
                Particle {
                    pos,
                    vel: Vector::new(speed * theta.cos(), speed * theta.sin()),
                    weight: 1.0 / self.count as f64,
                }
            })
            .collect();
        self.initialized = true;
    }

    fn predict<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let accel = Gaussian::new(0.0, self.accel_std);
        for p in &mut self.particles {
            p.vel = p.vel + Vector::new(accel.sample(rng), accel.sample(rng)) * self.dt;
            // Soft speed cap: renormalize excessive velocities.
            let speed = p.vel.norm();
            if speed > self.max_speed {
                p.vel = p.vel * (self.max_speed / speed);
            }
            p.pos = self.field.clamp(p.pos + p.vel * self.dt);
        }
    }

    /// Per-node mean RSS over the group (`None` for silent nodes).
    fn mean_observations(&self, group: &GroupSampling) -> Vec<Option<f64>> {
        (0..group.node_count())
            .map(|j| {
                let mut sum = 0.0;
                let mut n = 0usize;
                for r in group.column(j).flatten() {
                    sum += r.dbm();
                    n += 1;
                }
                (n > 0).then(|| sum / n as f64)
            })
            .collect()
    }

    fn update_weights(&mut self, observations: &[Option<f64>], samples_per_node: usize) {
        // Group-mean noise std: σ/√k.
        let sigma = (self.model.sigma / (samples_per_node as f64).sqrt()).max(1e-3);
        for p in &mut self.particles {
            let mut log_lik = 0.0;
            for (node_pos, obs) in self.positions.iter().zip(observations) {
                if let Some(obs) = obs {
                    let predicted = self.model.mean_rss(node_pos.distance(p.pos)).dbm();
                    let z = (obs - predicted) / sigma;
                    log_lik += -0.5 * z * z;
                }
            }
            p.weight = p.weight.max(1e-300) * log_lik.exp().max(1e-300);
        }
        let total: f64 = self.particles.iter().map(|p| p.weight).sum();
        if total > 0.0 && total.is_finite() {
            for p in &mut self.particles {
                p.weight /= total;
            }
        } else {
            // Degenerate weights: reset to uniform rather than NaN-ing out.
            let w = 1.0 / self.particles.len() as f64;
            for p in &mut self.particles {
                p.weight = w;
            }
        }
    }

    fn effective_sample_size(&self) -> f64 {
        1.0 / self
            .particles
            .iter()
            .map(|p| p.weight * p.weight)
            .sum::<f64>()
    }

    fn resample_systematic<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let n = self.particles.len();
        let start: f64 = rng.gen_range(0.0..1.0 / n as f64);
        let mut out = Vec::with_capacity(n);
        let mut cum = self.particles[0].weight;
        let mut i = 0usize;
        for k in 0..n {
            let u = start + k as f64 / n as f64;
            while u > cum && i + 1 < n {
                i += 1;
                cum += self.particles[i].weight;
            }
            out.push(Particle {
                weight: 1.0 / n as f64,
                ..self.particles[i]
            });
        }
        self.particles = out;
    }

    /// The weighted-mean position of the particle cloud.
    pub fn estimate(&self) -> Point {
        let mut x = 0.0;
        let mut y = 0.0;
        for p in &self.particles {
            x += p.weight * p.pos.x;
            y += p.weight * p.pos.y;
        }
        Point::new(x, y)
    }

    /// One predict–update–resample cycle over a grouping sampling.
    pub fn localize<R: Rng + ?Sized>(&mut self, group: &GroupSampling, rng: &mut R) -> Point {
        if !self.initialized {
            self.initialize(rng);
        } else {
            self.predict(rng);
        }
        let obs = self.mean_observations(group);
        self.update_weights(&obs, group.instants());
        if self.effective_sample_size() < self.particles.len() as f64 / 2.0 {
            self.resample_systematic(rng);
        }
        self.estimate()
    }

    /// Tracks a target along `trace`, one localization per trace point.
    pub fn track<R: Rng + ?Sized>(
        &mut self,
        field: &SensorField,
        sampler: &GroupSampler,
        trace: &Trace,
        rng: &mut R,
    ) -> TrackingRun {
        let mut localizations = Vec::with_capacity(trace.len());
        for p in trace.points() {
            let group = sampler.sample(field, p.pos, rng);
            let estimate = self.localize(&group, rng);
            localizations.push(Localization {
                t: p.t,
                truth: p.pos,
                estimate,
                face: fttt::facemap::FaceId(0),
                similarity: 0.0,
                error: estimate.distance(p.pos),
                evaluated: self.particles.len(),
            });
        }
        TrackingRun { localizations }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use wsn_mobility::WaypointPath;
    use wsn_network::Deployment;

    fn rng(seed: u64) -> rand_chacha::ChaCha8Rng {
        rand_chacha::ChaCha8Rng::seed_from_u64(seed)
    }

    fn setup(sigma: f64) -> (SensorField, ParticleFilter, GroupSampler) {
        let field = Rect::square(100.0);
        let deployment = Deployment::grid(9, field);
        let sf = SensorField::new(deployment, 150.0);
        let model = PathLossModel::new(-40.0, 0.0, 4.0, sigma);
        let pf = ParticleFilter::new(&sf.deployment().positions(), field, model, 500, 5.0, 1.0);
        let sampler = GroupSampler::new(model, 5);
        (sf, pf, sampler)
    }

    #[test]
    fn converges_on_stationary_target() {
        let (field, mut pf, sampler) = setup(2.0);
        let target = Point::new(33.0, 62.0);
        let mut r = rng(1);
        let mut last = Point::new(50.0, 50.0);
        for _ in 0..20 {
            let g = sampler.sample(&field, target, &mut r);
            last = pf.localize(&g, &mut r);
        }
        assert!(
            last.distance(target) < 8.0,
            "estimate {last} vs target {target}"
        );
    }

    #[test]
    fn tracks_a_moving_target() {
        let (field, mut pf, sampler) = setup(4.0);
        let trace = WaypointPath::new(vec![Point::new(20.0, 50.0), Point::new(80.0, 50.0)])
            .walk_constant(3.0, 1.0);
        let run = pf.track(&field, &sampler, &trace, &mut rng(2));
        // The filter needs a few steps to converge from its uniform prior;
        // judge the second half of the run.
        let half = run.localizations.len() / 2;
        let late_mean: f64 = run.localizations[half..]
            .iter()
            .map(|l| l.error)
            .sum::<f64>()
            / (run.localizations.len() - half) as f64;
        assert!(late_mean < 12.0, "late mean {late_mean}");
    }

    #[test]
    fn estimates_stay_in_field() {
        let (field, mut pf, sampler) = setup(6.0);
        let mut r = rng(3);
        for i in 0..30 {
            let target = Point::new(5.0 + 3.0 * i as f64, 95.0 - 2.5 * i as f64);
            let g = sampler.sample(&field, field.rect().clamp(target), &mut r);
            let est = pf.localize(&g, &mut r);
            assert!(field.rect().contains(est));
        }
    }

    #[test]
    fn blackout_does_not_nan() {
        let (field, mut pf, sampler) = setup(6.0);
        let mut r = rng(4);
        // Nothing responds: weights degenerate → uniform fallback.
        let g = wsn_network::GroupSampling::empty(field.len(), 5);
        let _ = sampler;
        let est = pf.localize(&g, &mut r);
        assert!(est.is_finite());
        assert!(field.rect().contains(est));
    }

    #[test]
    fn reset_forgets_the_track() {
        let (field, mut pf, sampler) = setup(2.0);
        let mut r = rng(5);
        let g = sampler.sample(&field, Point::new(20.0, 20.0), &mut r);
        let _ = pf.localize(&g, &mut r);
        assert!(pf.initialized);
        pf.reset();
        assert!(!pf.initialized);
        assert!(pf.particles.is_empty());
    }

    #[test]
    #[should_panic(expected = "two particles")]
    fn tiny_filter_rejected() {
        let field = Rect::square(10.0);
        let _ = ParticleFilter::new(
            &[Point::new(1.0, 1.0)],
            field,
            PathLossModel::paper_default(),
            1,
            5.0,
            1.0,
        );
    }
}
