//! Comparator trackers the paper evaluates FTTT against (Section 7):
//!
//! * [`DirectMle`] — "Direct maximum likelihood estimation" tracking in the
//!   style of sequence-based localization (Yedavalli & Krishnamachari,
//!   paper ref. [24]): the field is divided by perpendicular **bisectors**
//!   (no uncertain areas — the `C = 1` degenerate division), each
//!   localization takes a **one-shot** detection sequence and matches it to
//!   the most similar face. No temporal state.
//! * [`PathMatching`] — "optimal path matching with MLE" in the style of
//!   Zhong et al. (paper ref. [22]): same certain-face division and
//!   one-shot sequences, but localizations are chained by a
//!   **maximum-velocity constraint** — the tracker keeps a beam of path
//!   hypotheses and extends each only to faces reachable within `v_max·Δt`,
//!   reporting the best-scoring hypothesis. This reproduces both PM's
//!   strength (temporal smoothing) and the weakness the paper calls out
//!   (it must *assume* a maximum target velocity).
//!
//! Both baselines deliberately share FTTT's substrate (same radio model,
//! same sampler, same raster machinery) so every accuracy difference in
//! the benchmarks comes from the strategies themselves.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod direct_mle;
pub mod ekf;
pub mod one_shot;
pub mod particle;
pub mod path_matching;
pub mod wcl;

pub use direct_mle::DirectMle;
pub use ekf::ExtendedKalman;
pub use one_shot::one_shot_vector;
pub use particle::ParticleFilter;
pub use path_matching::PathMatching;
pub use wcl::WeightedCentroid;
