//! Weighted centroid localization (WCL): the classic range-free RSS
//! estimator, added as a non-face comparator.
//!
//! WCL needs no offline division at all: the estimate is the
//! RSS-weighted centroid of the responding sensors,
//! `p̂ = Σ wᵢ·posᵢ / Σ wᵢ` with `wᵢ = 10^{RSSᵢ/(10·g)}` (linear-scale power
//! tempered by the degree `g`). It is the natural "no machinery" baseline:
//! anything the face-based strategies buy must show up as an improvement
//! over this.

use fttt::tracker::{Localization, TrackingRun};
use rand::Rng;
use wsn_geometry::{Point, Rect};
use wsn_mobility::Trace;
use wsn_network::{GroupSampler, GroupSampling, SensorField};

/// The weighted-centroid tracker.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightedCentroid {
    positions: Vec<Point>,
    field: Rect,
    /// Weighting degree `g`: larger `g` flattens the weights toward a
    /// plain centroid; `g → 0` approaches nearest-node snapping.
    pub degree: f64,
}

impl WeightedCentroid {
    /// Creates the tracker for sensors at `positions` over `field`.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sensors are given or `degree` is not
    /// strictly positive.
    pub fn new(positions: &[Point], field: Rect, degree: f64) -> Self {
        assert!(positions.len() >= 2, "need at least two sensors");
        assert!(
            degree > 0.0 && degree.is_finite(),
            "degree must be positive"
        );
        Self {
            positions: positions.to_vec(),
            field,
            degree,
        }
    }

    /// The conventional setting `g = β` (weights ∝ an estimate of `1/d`).
    pub fn with_path_loss_degree(positions: &[Point], field: Rect, beta: f64) -> Self {
        Self::new(positions, field, beta)
    }

    /// Localizes one grouping sampling: weights use each responding
    /// node's mean RSS over the group; silent nodes contribute nothing.
    /// With no responders at all, returns the field centre.
    pub fn localize(&self, group: &GroupSampling) -> Point {
        let mut wx = 0.0;
        let mut wy = 0.0;
        let mut wsum = 0.0;
        for (j, pos) in self.positions.iter().enumerate() {
            let mut sum = 0.0;
            let mut count = 0usize;
            for reading in group.column(j).flatten() {
                sum += reading.dbm();
                count += 1;
            }
            if count == 0 {
                continue;
            }
            let mean_dbm = sum / count as f64;
            let w = 10f64.powf(mean_dbm / (10.0 * self.degree));
            wx += w * pos.x;
            wy += w * pos.y;
            wsum += w;
        }
        if wsum <= 0.0 {
            self.field.center()
        } else {
            self.field.clamp(Point::new(wx / wsum, wy / wsum))
        }
    }

    /// Tracks a target along `trace`, one localization per trace point.
    pub fn track<R: Rng + ?Sized>(
        &self,
        field: &SensorField,
        sampler: &GroupSampler,
        trace: &Trace,
        rng: &mut R,
    ) -> TrackingRun {
        let mut localizations = Vec::with_capacity(trace.len());
        for p in trace.points() {
            let group = sampler.sample(field, p.pos, rng);
            let estimate = self.localize(&group);
            localizations.push(Localization {
                t: p.t,
                truth: p.pos,
                estimate,
                face: fttt::facemap::FaceId(0),
                similarity: 0.0,
                error: estimate.distance(p.pos),
                evaluated: field.len(),
            });
        }
        TrackingRun { localizations }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use wsn_mobility::WaypointPath;
    use wsn_network::{Deployment, FaultModel, NodeId};
    use wsn_signal::PathLossModel;

    fn rng(seed: u64) -> rand_chacha::ChaCha8Rng {
        rand_chacha::ChaCha8Rng::seed_from_u64(seed)
    }

    fn setup(sigma: f64) -> (SensorField, WeightedCentroid, GroupSampler) {
        let field = Rect::square(100.0);
        let deployment = Deployment::grid(9, field);
        let sensor_field = SensorField::new(deployment, 150.0);
        let wcl = WeightedCentroid::with_path_loss_degree(
            &sensor_field.deployment().positions(),
            field,
            4.0,
        );
        let sampler = GroupSampler::new(PathLossModel::new(-40.0, 0.0, 4.0, sigma), 5);
        (sensor_field, wcl, sampler)
    }

    #[test]
    fn estimate_pulls_toward_the_target() {
        let (field, wcl, sampler) = setup(0.0);
        let mut r = rng(1);
        // A target near a corner node: the estimate must land closer to
        // that corner than the plain centroid of the deployment (50, 50).
        let target = Point::new(20.0, 20.0);
        let group = sampler.sample(&field, target, &mut r);
        let est = wcl.localize(&group);
        assert!(
            est.distance(target) < Point::new(50.0, 50.0).distance(target),
            "estimate {est} not pulled toward {target}"
        );
    }

    #[test]
    fn estimate_stays_in_field() {
        let (field, wcl, sampler) = setup(6.0);
        let mut r = rng(2);
        for i in 0..50 {
            let target = Point::new(2.0 + (i as f64 * 1.9) % 96.0, (i as f64 * 7.3) % 99.0);
            let group = sampler.sample(&field, target, &mut r);
            let est = wcl.localize(&group);
            assert!(field.rect().contains(est), "{est} escaped the field");
        }
    }

    #[test]
    fn blackout_falls_back_to_center() {
        let (field, wcl, sampler) = setup(6.0);
        let dead: Vec<NodeId> = field.nodes().iter().map(|n| n.id).collect();
        let faulty = sampler.with_fault(FaultModel::with_dead_nodes(dead));
        let mut r = rng(3);
        let group = faulty.sample(&field, Point::new(10.0, 10.0), &mut r);
        assert_eq!(wcl.localize(&group), Point::new(50.0, 50.0));
    }

    #[test]
    fn tracks_a_straight_walk_reasonably() {
        let (field, wcl, sampler) = setup(6.0);
        let trace = WaypointPath::new(vec![Point::new(20.0, 50.0), Point::new(80.0, 50.0)])
            .walk_constant(3.0, 1.0);
        let run = wcl.track(&field, &sampler, &trace, &mut rng(4));
        let stats = run.error_stats();
        // WCL is crude but far better than guessing.
        assert!(stats.mean < 25.0, "mean {}", stats.mean);
    }

    #[test]
    #[should_panic(expected = "degree must be positive")]
    fn zero_degree_rejected() {
        let _ = WeightedCentroid::new(
            &[Point::ORIGIN, Point::new(1.0, 1.0)],
            Rect::square(10.0),
            0.0,
        );
    }
}
