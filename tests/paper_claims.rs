//! Integration tests pinning the paper's comparative claims at small
//! scale — the same shapes the bench binaries reproduce at full scale.

use fttt_suite::baselines::{DirectMle, PathMatching};
use fttt_suite::fttt::config::PaperParams;
use fttt_suite::fttt::theory;
use fttt_suite::fttt::tracker::{Tracker, TrackerOptions};
use fttt_suite::fttt::FaceMap;
use fttt_suite::geometry::{Point, Rect};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

fn params() -> PaperParams {
    PaperParams::default().with_nodes(10).with_cell_size(2.0)
}

/// Means over a few worlds for each method, all seeing identical worlds.
fn method_means(seeds: std::ops::Range<u64>) -> (f64, f64, f64, f64) {
    let p = params();
    let (mut fttt_sum, mut ext_sum, mut pm_sum, mut mle_sum) = (0.0, 0.0, 0.0, 0.0);
    let n = (seeds.end - seeds.start) as f64;
    for s in seeds {
        let mut world = rng(s);
        let field = p.random_field(&mut world);
        let trace = p.random_trace(20.0, &mut world);
        let positions = field.deployment().positions();

        let map = p.face_map(&field);
        let mut tracker = Tracker::new(map.clone(), TrackerOptions::default());
        let mut noise = rng(s + 1000);
        fttt_sum += tracker
            .track(&field, &p.sampler(), &trace, &mut noise)
            .error_stats()
            .mean;

        let mut ext = Tracker::new(map, TrackerOptions::extended());
        let mut noise = rng(s + 1000);
        ext_sum += ext
            .track(&field, &p.sampler(), &trace, &mut noise)
            .error_stats()
            .mean;

        let mut pm = PathMatching::new(
            &positions,
            p.rect(),
            p.cell_size,
            p.max_speed,
            p.localization_period(),
        );
        let mut noise = rng(s + 1000);
        pm_sum += pm
            .track(&field, &p.sampler(), &trace, &mut noise)
            .error_stats()
            .mean;

        let mle = DirectMle::new(&positions, p.rect(), p.cell_size);
        let mut noise = rng(s + 1000);
        mle_sum += mle
            .track(&field, &p.sampler(), &trace, &mut noise)
            .error_stats()
            .mean;
    }
    (fttt_sum / n, ext_sum / n, pm_sum / n, mle_sum / n)
}

/// The paper's headline ordering (Fig. 10/11), adjusted for the fact that
/// this suite's PM is deliberately stronger than the published one
/// (tie-averaged estimates; see DESIGN.md §3a.3): extended FTTT must beat
/// PM outright, basic FTTT must at least match it, and PM must beat
/// Direct MLE.
#[test]
fn fttt_beats_pm_beats_direct_mle() {
    let (fttt, ext, pm, mle) = method_means(0..6);
    assert!(
        ext < pm,
        "extended FTTT ({ext:.2} m) must beat PM ({pm:.2} m)"
    );
    assert!(
        fttt < pm * 1.1,
        "basic FTTT ({fttt:.2} m) must at least match PM ({pm:.2} m)"
    );
    assert!(pm < mle, "PM ({pm:.2} m) must beat Direct MLE ({mle:.2} m)");
    assert!(
        fttt < mle,
        "basic FTTT ({fttt:.2} m) must beat Direct MLE ({mle:.2} m)"
    );
}

/// Fig. 12(c,d): the extension keeps (or improves) the mean and cuts the
/// deviation. At integration-test scale the std effect needs a deployment
/// dense enough for quantitative pair values to matter — the paper's own
/// std figure is likewise strongest at n ≥ 10 over 60 s runs; the
/// full-scale sweep lives in the fig12cd experiment.
#[test]
fn extension_smooths_the_trajectory() {
    let p = PaperParams::default().with_nodes(20).with_cell_size(2.0);
    let (mut basic_std, mut ext_std, mut basic_mean, mut ext_mean) = (0.0, 0.0, 0.0, 0.0);
    let seeds = 6;
    for s in 0..seeds {
        let mut world = rng(40 + s);
        let field = p.random_field(&mut world);
        let trace = p.random_trace(30.0, &mut world);
        let map = p.face_map(&field);

        let mut noise = rng(140 + s);
        let mut basic = Tracker::new(map.clone(), TrackerOptions::default());
        let run = basic.track(&field, &p.sampler(), &trace, &mut noise);
        basic_std += run.error_stats().std;
        basic_mean += run.error_stats().mean;

        let mut noise = rng(140 + s);
        let mut ext = Tracker::new(map, TrackerOptions::extended());
        let run = ext.track(&field, &p.sampler(), &trace, &mut noise);
        ext_std += run.error_stats().std;
        ext_mean += run.error_stats().mean;
    }
    assert!(
        ext_std < basic_std * 1.02,
        "extension must not worsen std: {:.2} vs {:.2}",
        ext_std / seeds as f64,
        basic_std / seeds as f64
    );
    assert!(
        ext_mean < basic_mean * 1.05,
        "extension must not worsen the mean: {:.2} vs {:.2}",
        ext_mean / seeds as f64,
        basic_mean / seeds as f64
    );
}

/// Section 5.1's numeric example, end to end through the theory module.
#[test]
fn sampling_times_bound_matches_paper_example() {
    let pairs_20_nodes = 20 * 19 / 2;
    assert_eq!(theory::required_sampling_times(0.99, pairs_20_nodes), 16);
}

/// Fig. 3's trend. The arrangement of uncertain boundaries is scale
/// invariant (Apollonius bands grow with the pair separation), so the
/// meaningful statement of "certain faces disappear as nodes move apart"
/// is relative to a *fixed observation region*: a target zone in the
/// middle of the field is covered by certain faces when the nodes are
/// nearby, and swallowed whole by uncertain bands once the nodes are far
/// away (every distance ratio tends to 1 with range).
#[test]
fn certain_faces_vanish_with_spacing() {
    let field = Rect::square(100.0);
    let c = params().uncertainty_constant();
    let square = |half: f64| {
        vec![
            Point::new(50.0 - half, 50.0 - half),
            Point::new(50.0 + half, 50.0 - half),
            Point::new(50.0 - half, 50.0 + half),
            Point::new(50.0 + half, 50.0 + half),
        ]
    };
    let window = Rect::new(Point::new(40.0, 40.0), Point::new(60.0, 60.0));
    let certain_cells_in_window = |half: f64| {
        let map = FaceMap::build(&square(half), field, c, 1.0);
        map.grid()
            .iter_centers()
            .filter(|&(_, center)| window.contains(center))
            .filter(|&(_, center)| {
                let id = map.face_at(center).unwrap();
                map.face(id).is_certain()
            })
            .count()
    };
    let tight = certain_cells_in_window(8.0);
    let wide = certain_cells_in_window(45.0);
    assert!(
        tight > 0,
        "nearby nodes must give certain cells in the window"
    );
    assert!(
        (wide as f64) < 0.25 * tight as f64,
        "certainty must collapse in the window: tight {tight} vs wide {wide} cells"
    );
}

/// The uncertainty constant threads consistently through the stack: the
/// face map built by PaperParams uses exactly eq. (3)'s value.
#[test]
fn constant_is_consistent_across_crates() {
    let p = params();
    let mut world = rng(77);
    let field = p.random_field(&mut world);
    let map = p.face_map(&field);
    assert_eq!(map.uncertainty_constant(), p.uncertainty_constant());
    assert_eq!(
        map.uncertainty_constant(),
        fttt_suite::signal::uncertainty_constant(p.epsilon, p.beta, p.sigma)
    );
}
