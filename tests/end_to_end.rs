//! Cross-crate integration tests: the whole stack from radio model to
//! tracking error, exercised the way the examples use it.

use fttt_suite::fttt::config::PaperParams;
use fttt_suite::fttt::tracker::{Tracker, TrackerOptions};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Integration-test-sized parameters: coarse raster, short runs.
fn params(n: usize) -> PaperParams {
    PaperParams::default().with_nodes(n).with_cell_size(2.0)
}

#[test]
fn full_pipeline_produces_bounded_errors() {
    let p = params(10);
    let mut r = rng(1);
    let field = p.random_field(&mut r);
    let map = p.face_map(&field);
    let trace = p.random_trace(20.0, &mut r);
    let mut tracker = Tracker::new(map, TrackerOptions::default());
    let run = tracker.track(&field, &p.sampler(), &trace, &mut r);
    let stats = run.error_stats();
    assert!(stats.count >= 40, "20 s at 2 Hz localization");
    assert!(stats.mean > 0.0 && stats.mean < 25.0, "mean {}", stats.mean);
    // Every estimate stays inside the monitored field.
    for l in &run.localizations {
        assert!(
            p.rect().contains(l.estimate),
            "estimate {} escaped",
            l.estimate
        );
    }
}

#[test]
fn whole_stack_is_deterministic_under_seed() {
    let p = params(8);
    let run = |seed: u64| {
        let mut r = rng(seed);
        let field = p.random_field(&mut r);
        let map = p.face_map(&field);
        let trace = p.random_trace(10.0, &mut r);
        let mut tracker = Tracker::new(map, TrackerOptions::default());
        tracker.track(&field, &p.sampler(), &trace, &mut r).errors()
    };
    assert_eq!(run(5), run(5));
    assert_ne!(run(5), run(6));
}

#[test]
fn more_sensors_reduce_error() {
    // The paper's Fig. 11(b) trend, at integration-test scale: average a
    // few seeds at n = 5 vs n = 20.
    let mean_for = |n: usize| {
        let p = params(n);
        let mut total = 0.0;
        let seeds = 5;
        for s in 0..seeds {
            let mut r = rng(100 + s);
            let field = p.random_field(&mut r);
            let map = p.face_map(&field);
            let trace = p.random_trace(15.0, &mut r);
            let mut tracker = Tracker::new(map, TrackerOptions::default());
            total += tracker
                .track(&field, &p.sampler(), &trace, &mut r)
                .error_stats()
                .mean;
        }
        total / seeds as f64
    };
    let sparse = mean_for(5);
    let dense = mean_for(20);
    assert!(
        dense < sparse,
        "denser deployment must track better: n=20 gives {dense}, n=5 gives {sparse}"
    );
}

#[test]
fn more_samples_reduce_error_under_idealized_sensing() {
    // Fig. 12(b)'s main effect at fixed nodes, under the paper's own
    // sensing model (flips confined to each pair's uncertain band). Under
    // unbounded Gaussian shadowing the effect inverts — see the fig12b
    // experiment and EXPERIMENTS.md.
    let mean_for = |k: usize| {
        let p = params(12).with_samples(k).with_idealized_noise();
        let mut total = 0.0;
        let seeds = 5;
        for s in 0..seeds {
            let mut r = rng(200 + s);
            let field = p.random_field(&mut r);
            let map = p.face_map(&field);
            let trace = p.random_trace(15.0, &mut r);
            let mut tracker = Tracker::new(map, TrackerOptions::default());
            total += tracker
                .track(&field, &p.sampler(), &trace, &mut r)
                .error_stats()
                .mean;
        }
        total / seeds as f64
    };
    let few = mean_for(2);
    let many = mean_for(9);
    assert!(many < few, "k=9 gives {many}, k=2 gives {few}");
}

#[test]
fn gaussian_k_sweep_stays_bounded() {
    // Under physical Gaussian shadowing, larger k must not blow the error
    // up even though it does not shrink it (the strict all-k-agree rule
    // trades sign errors for zeros).
    let mean_for = |k: usize| {
        let p = params(12).with_samples(k);
        let mut r = rng(250);
        let field = p.random_field(&mut r);
        let map = p.face_map(&field);
        let trace = p.random_trace(15.0, &mut r);
        let mut tracker = Tracker::new(map, TrackerOptions::default());
        tracker
            .track(&field, &p.sampler(), &trace, &mut r)
            .error_stats()
            .mean
    };
    let few = mean_for(2);
    let many = mean_for(9);
    assert!(many < few * 2.0 + 3.0, "k=9 gives {many}, k=2 gives {few}");
}

#[test]
fn heuristic_tracking_is_cheaper_and_close() {
    let p = params(12);
    let mut r = rng(31);
    let field = p.random_field(&mut r);
    let map = p.face_map(&field);
    let trace = p.random_trace(15.0, &mut r);

    let mut world = rng(32);
    let mut exhaustive = Tracker::new(map.clone(), TrackerOptions::default());
    let run_ex = exhaustive.track(&field, &p.sampler(), &trace, &mut world);

    let mut world = rng(32);
    let mut heuristic = Tracker::new(map, TrackerOptions::heuristic());
    let run_he = heuristic.track(&field, &p.sampler(), &trace, &mut world);

    assert!(run_he.total_evaluated() < run_ex.total_evaluated() / 2);
    assert!(run_he.error_stats().mean < run_ex.error_stats().mean * 1.6 + 2.0);
}
