//! Integration tests of the fault-tolerance path (Section 4.4.3) across
//! the network, sampling and matching crates.

use fttt_suite::fttt::config::PaperParams;
use fttt_suite::fttt::sampling::basic_sampling_vector;
use fttt_suite::fttt::tracker::{Tracker, TrackerOptions};
use fttt_suite::network::{FaultModel, NodeId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

fn params() -> PaperParams {
    PaperParams::default().with_nodes(10).with_cell_size(2.0)
}

/// The sampling vector keeps the signature dimension no matter how many
/// sensors fail — the property eq. (6) exists to guarantee.
#[test]
fn vector_dimension_survives_any_fault_rate() {
    let p = params();
    let mut world = rng(1);
    let field = p.random_field(&mut world);
    let expected_dim = field.len() * (field.len() - 1) / 2;
    for prob in [0.0, 0.3, 0.7, 1.0] {
        let sampler = p.sampler().with_fault(FaultModel::with_node_failure(prob));
        let group = sampler.sample(&field, p.rect().center(), &mut world);
        let v = basic_sampling_vector(&group);
        assert_eq!(
            v.len(),
            expected_dim,
            "dimension must be invariant (P = {prob})"
        );
    }
}

/// With every sensor dead the vector is all '*' and matching still returns
/// a defined (if uninformative) answer rather than failing.
#[test]
fn total_blackout_still_localizes_gracefully() {
    let p = params();
    let mut world = rng(2);
    let field = p.random_field(&mut world);
    let map = p.face_map(&field);
    let dead: Vec<NodeId> = field.nodes().iter().map(|n| n.id).collect();
    let sampler = p.sampler().with_fault(FaultModel::with_dead_nodes(dead));
    let group = sampler.sample(&field, p.rect().center(), &mut world);
    let v = basic_sampling_vector(&group);
    assert_eq!(v.unknown_count(), v.len(), "every pair must be '*'");
    let mut tracker = Tracker::new(map, TrackerOptions::default());
    let (estimate, outcome) = tracker.localize(&group);
    assert!(p.rect().contains(estimate));
    // All faces tie; tie-averaging pulls the estimate toward the field's
    // centre of mass.
    assert!(outcome.ties.len() > 1);
}

/// Error grows smoothly (not catastrophically) with the failure rate.
#[test]
fn degradation_is_graceful() {
    let p = params();
    let mean_for = |prob: f64| {
        let mut total = 0.0;
        let seeds = 4;
        for s in 0..seeds {
            let mut world = rng(300 + s);
            let field = p.random_field(&mut world);
            let map = p.face_map(&field);
            let trace = p.random_trace(15.0, &mut world);
            let sampler = p.sampler().with_fault(FaultModel::with_node_failure(prob));
            let mut tracker = Tracker::new(map, TrackerOptions::default());
            total += tracker
                .track(&field, &sampler, &trace, &mut world)
                .error_stats()
                .mean;
        }
        total / seeds as f64
    };
    let clean = mean_for(0.0);
    let faulty = mean_for(0.3);
    let very_faulty = mean_for(0.6);
    assert!(
        clean <= faulty * 1.05,
        "faults should not help: {clean} vs {faulty}"
    );
    assert!(
        very_faulty < 45.0,
        "even at 60% failure the tracker must stay in the field's scale, got {very_faulty}"
    );
}

/// Dead sensors are equivalent to out-of-range sensors: a far target and a
/// dead node produce the same '*'/±1 pattern for the affected pairs.
#[test]
fn dead_node_equals_out_of_range_node() {
    // Sensing range large enough that every live node hears the target —
    // otherwise an out-of-range partner would legitimately turn a pair
    // into '*'.
    let p = PaperParams {
        sensing_range: 200.0,
        ..PaperParams::default().with_nodes(5).with_cell_size(2.0)
    };
    let mut world = rng(9);
    let field = p.random_field(&mut world);
    // Node 0 dead:
    let sampler_dead = p
        .sampler()
        .with_fault(FaultModel::with_dead_nodes([NodeId(0)]));
    let g = sampler_dead.sample(&field, p.rect().center(), &mut world);
    // Pairs involving node 0 must be -1 (node 0 is the smaller id and is
    // silent ⟹ "silent reads weaker" ⟹ value −1), never '*', because the
    // partner responded.
    let v = basic_sampling_vector(&g);
    for j in 1..field.len() {
        let idx = j - 1; // pairs (0,1),(0,2),… are the first n−1 components
        assert_eq!(v.component(idx), Some(-1.0), "pair (0,{j})");
    }
}
