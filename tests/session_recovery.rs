//! Integration tests of the self-healing session layer: the session must
//! stay alive and finite under *any* fault pressure — total blackout,
//! mid-run mass death, lying (stuck) sensors — and must walk its status
//! ladder Lost → Tracking across a bounded blackout window.

use fttt_suite::fttt::config::PaperParams;
use fttt_suite::fttt::session::{SessionOptions, TrackStatus, TrackingSession};
use fttt_suite::fttt::tracker::{Tracker, TrackerOptions};
use fttt_suite::network::{GroupSampler, RegimeEngine, RegimeKind, Schedule};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeSet;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

fn params() -> PaperParams {
    PaperParams::default().with_nodes(8).with_cell_size(2.0)
}

fn session(p: &PaperParams, extended: bool) -> TrackingSession {
    let field = p.grid_field();
    let map = p.face_map(&field);
    let options = if extended {
        TrackerOptions {
            extended: true,
            ..TrackerOptions::heuristic()
        }
    } else {
        TrackerOptions::heuristic()
    };
    TrackingSession::new(
        Tracker::new(map, options),
        SessionOptions::new(p.samples_k).with_max_speed(p.max_speed),
    )
}

/// Runs a 15 s session under `engine`, checking every round's invariants.
fn run_checked(p: &PaperParams, extended: bool, mut engine: RegimeEngine, seed: u64) {
    let field = p.grid_field();
    let mut world = rng(seed);
    let trace = p.random_trace(15.0, &mut world);
    let mut s = session(p, extended);
    let base = p.sampler();
    let run = s.run(&trace, &mut world, |k, pos, t, r| {
        let sampler = GroupSampler {
            samples: k,
            ..base.clone()
        };
        let mut g = sampler.sample(&field, pos, r);
        engine.apply(t, &mut g, r);
        g
    });
    assert_eq!(run.rounds.len(), trace.len());
    for (round, err) in run.rounds.iter().zip(&run.errors) {
        assert!(
            round.estimate.x.is_finite() && round.estimate.y.is_finite(),
            "estimate must stay finite (t = {})",
            round.t
        );
        assert!(err.is_finite(), "error must stay finite (t = {})", round.t);
        assert!(round.samples >= 1 && round.samples <= s.options().max_samples);
        assert!((0.0..=1.0).contains(&round.missing_fraction));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The session never panics and always reports finite estimates under
    /// any static node-failure rate in [0, 1] — including 1.0, a run-long
    /// total blackout.
    #[test]
    fn session_survives_any_fault_rate(rate in 0.0..=1.0f64, seed in 0u64..1000, ext in 0u8..2) {
        let ext = ext == 1;
        let p = params();
        let schedule = Schedule::parse(&format!("static node_failure={rate}"))
            .expect("rate in [0,1] must parse");
        run_checked(&p, ext, schedule.engine(p.nodes), seed);
    }

    /// Mid-run mass death (an unbounded outage of every node from a random
    /// onset) never panics the session.
    #[test]
    fn session_survives_midrun_mass_death(onset in 0.0..15.0f64, seed in 0u64..1000) {
        let p = params();
        let engine = RegimeEngine::new(p.nodes).with(RegimeKind::Outage {
            nodes: BTreeSet::new(),
            from: onset,
            until: f64::INFINITY,
        });
        run_checked(&p, false, engine, seed);
    }

    /// Every sensor lying (stuck at its last reading) from a random onset:
    /// the readings stay present, so the `*`-rule never fires, and only the
    /// behavioral monitor stands between the session and silent garbage.
    /// It must at minimum stay finite and alive.
    #[test]
    fn session_survives_all_readings_stuck(onset in 0.0..10.0f64, seed in 0u64..1000) {
        let p = params();
        let engine = RegimeEngine::new(p.nodes)
            .with(RegimeKind::StuckAt { nodes: BTreeSet::new(), from: onset });
        run_checked(&p, false, engine, seed);
    }
}

/// Regression: a bounded total blackout drives the session into `Lost`
/// during the window and back to `Tracking` after it — the Lost →
/// Tracking transition the recovery ladder exists for.
#[test]
fn session_recovers_across_blackout_window() {
    let p = params();
    let field = p.grid_field();
    let schedule = Schedule::parse("outage from=6 until=12").expect("valid schedule");
    let mut engine = schedule.engine(p.nodes);
    let mut world = rng(7);
    let trace = p.random_trace(25.0, &mut world);
    let mut s = session(&p, false);
    let base = p.sampler();
    let run = s.run(&trace, &mut world, |k, pos, t, r| {
        let sampler = GroupSampler {
            samples: k,
            ..base.clone()
        };
        let mut g = sampler.sample(&field, pos, r);
        engine.apply(t, &mut g, r);
        g
    });
    let lost_at = run
        .rounds
        .iter()
        .position(|r| r.status == TrackStatus::Lost)
        .expect("a six-second total blackout must reach Lost");
    assert!(
        run.rounds[lost_at].t >= 6.0 && run.rounds[lost_at].t < 12.0,
        "Lost must be entered inside the blackout window, got t = {}",
        run.rounds[lost_at].t
    );
    assert!(
        run.recovered_from_lost(),
        "the session must return to Tracking after the window"
    );
    // While Lost in the blackout, the session holds a finite estimate
    // instead of reporting the all-tie field centre.
    for r in &run.rounds {
        if r.status == TrackStatus::Lost && r.similarity.is_none() {
            assert!(r.held, "blackout rounds must be holds");
        }
    }
    // A *total* blackout has zero live pairs, so the Section-5.1 bound is
    // undefined and the session must NOT escalate k against phantom pairs
    // (the old `.max(1)` bug): k holds constant across the window.
    let blackout_ks: BTreeSet<usize> = run
        .rounds
        .iter()
        .filter(|r| r.held && r.similarity.is_none())
        .map(|r| r.samples)
        .collect();
    assert_eq!(
        blackout_ks.len(),
        1,
        "k must hold constant through a zero-pair blackout, saw {blackout_ks:?}"
    );
}

/// A *partial* outage (live pairs remain, so the Section-5.1 bound is
/// defined) escalates the sampling times, the escalation stays within the
/// clamp, and `k` decays back toward the baseline once rounds run healthy
/// again.
#[test]
fn sampling_times_decay_after_recovery() {
    let p = params();
    let field = p.grid_field();
    // Nodes 4–7 go silent for the window: 22 of 28 pairs unknown (starved,
    // > max_missing_fraction) while 4 live nodes leave 6 pairs to escalate
    // against.
    let schedule = Schedule::parse("outage nodes=4,5,6,7 from=3 until=6").expect("valid schedule");
    let mut engine = schedule.engine(p.nodes);
    let mut world = rng(11);
    let trace = p.random_trace(30.0, &mut world);
    let mut s = session(&p, false);
    let base = p.sampler();
    let run = s.run(&trace, &mut world, |k, pos, t, r| {
        let sampler = GroupSampler {
            samples: k,
            ..base.clone()
        };
        let mut g = sampler.sample(&field, pos, r);
        engine.apply(t, &mut g, r);
        g
    });
    let peak = run.rounds.iter().map(|r| r.samples).max().unwrap();
    assert!(peak > p.samples_k, "partial outage must escalate k");
    assert!(
        peak <= s.options().max_samples,
        "escalation must respect the clamp"
    );
    let last = run.rounds.last().unwrap();
    assert!(
        last.samples < peak,
        "k must decay after recovery: peak {peak}, final {}",
        last.samples
    );
}
