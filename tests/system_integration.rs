//! Integration tests for the full system path: sampling → uplink →
//! tracking, with energy accounting; plus the extra baselines.

use fttt_suite::baselines::{ParticleFilter, WeightedCentroid};
use fttt_suite::fttt::config::PaperParams;
use fttt_suite::fttt::postprocess;
use fttt_suite::fttt::tracker::{Tracker, TrackerOptions};
use fttt_suite::network::{EnergyLedger, EnergyModel, Uplink};
use fttt_suite::signal::Gaussian;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

fn params() -> PaperParams {
    PaperParams::default().with_nodes(10).with_cell_size(2.0)
}

#[test]
fn lossy_uplink_degrades_gracefully() {
    let p = params();
    let run_with_loss = |loss: f64| {
        let mut world = rng(50);
        let field = p.random_field(&mut world);
        let map = p.face_map(&field);
        let trace = p.random_trace(20.0, &mut world);
        let sampler = p.sampler();
        let uplink = Uplink::new(loss, Gaussian::new(0.0, 0.0), f64::INFINITY);
        let mut tracker = Tracker::new(map, TrackerOptions::default());
        let mut total = 0.0;
        let mut count = 0usize;
        for pt in trace.points() {
            let sensed = sampler.sample(&field, pt.pos, &mut world);
            let (received, _) = uplink.deliver(&sensed, &mut world);
            let (estimate, _) = tracker.localize(&received);
            total += estimate.distance(pt.pos);
            count += 1;
        }
        total / count as f64
    };
    let clean = run_with_loss(0.0);
    let lossy = run_with_loss(0.4);
    assert!(clean.is_finite() && lossy.is_finite());
    assert!(
        lossy < 45.0,
        "40% packet loss must not collapse tracking: {lossy}"
    );
    assert!(
        clean <= lossy * 1.1,
        "loss should not help: {clean} vs {lossy}"
    );
}

#[test]
fn energy_accounting_scales_with_k() {
    let p = params();
    let energy_for_k = |k: usize| {
        let pk = p.with_samples(k);
        let mut world = rng(60);
        let field = pk.random_field(&mut world);
        let sampler = pk.sampler();
        let mut ledger = EnergyLedger::new(EnergyModel::default(), field.len());
        // Same number of localizations for both k.
        for i in 0..40 {
            let target = pk.rect().clamp(wsn_geometry_point(i));
            let g = sampler.sample(&field, target, &mut world);
            ledger.charge_grouping(&g);
        }
        ledger.total()
    };
    let e3 = energy_for_k(3);
    let e9 = energy_for_k(9);
    assert!(e9 > e3, "more samples must cost more energy");
    // Sampling cost triples; messages stay constant — the ratio sits
    // strictly between 1 and 3.
    assert!(e9 / e3 < 3.0, "ratio {}", e9 / e3);
    assert!(e9 / e3 > 1.5, "ratio {}", e9 / e3);
}

fn wsn_geometry_point(i: usize) -> fttt_suite::geometry::Point {
    fttt_suite::geometry::Point::new(
        10.0 + (i as f64 * 7.3) % 80.0,
        10.0 + (i as f64 * 3.9) % 80.0,
    )
}

#[test]
fn smoothing_helps_the_basic_tracker() {
    let p = params();
    let mut world = rng(70);
    let field = p.random_field(&mut world);
    let map = p.face_map(&field);
    let trace = p.random_trace(30.0, &mut world);
    let mut tracker = Tracker::new(map, TrackerOptions::default());
    let run = tracker.track(&field, &p.sampler(), &trace, &mut world);
    let smoothed = postprocess::smooth_estimates(&run, 2);
    assert!(postprocess::roughness(&smoothed) < postprocess::roughness(&run));
    // Smoothing a mostly-continuous target trajectory should not hurt the
    // mean much (and usually helps).
    assert!(smoothed.error_stats().mean < run.error_stats().mean * 1.15);
}

#[test]
fn extra_baselines_run_end_to_end() {
    let p = params();
    let mut world = rng(80);
    let field = p.random_field(&mut world);
    let trace = p.random_trace(15.0, &mut world);
    let positions = field.deployment().positions();

    let wcl = WeightedCentroid::with_path_loss_degree(&positions, p.rect(), p.beta);
    let run_wcl = wcl.track(&field, &p.sampler(), &trace, &mut rng(81));
    assert!(run_wcl.error_stats().mean < 35.0);

    let mut pf = ParticleFilter::new(
        &positions,
        p.rect(),
        p.model(),
        400,
        p.max_speed,
        p.localization_period(),
    );
    let run_pf = pf.track(&field, &p.sampler(), &trace, &mut rng(82));
    assert!(run_pf.error_stats().mean.is_finite());
    for l in &run_pf.localizations {
        assert!(p.rect().contains(l.estimate));
    }
}
